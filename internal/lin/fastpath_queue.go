package lin

import (
	"context"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// fastQueueCheck is the one-shot FIFO-queue fast path (DESIGN.md,
// decision 15), following the matched enqueue/dequeue segment analysis
// of Bouajjani–Emmi–Enea–Hamza. Its fragment is stricter than the
// streaming cores': the trace must be complete (every operation
// responded), inputs pairwise distinct, untagged enqueue values
// pairwise distinct, and no dequeue may report empty — anything else
// falls back to the exact engines. Inside the fragment, with distinct
// values, a linearization exists iff
//
//	(a) every dequeued value was enqueued exactly once, dequeued at
//	    most once, and its dequeue does not respond before its enqueue
//	    is invoked;
//	(b) no pair of dequeued values u, v has enq(u) responding before
//	    enq(v) is invoked while deq(v) responds before deq(u) is
//	    invoked — FIFO would need u out first, real time forbids it;
//	(c) no value enqueued-and-responded but never dequeued precedes
//	    (enqueue response before enqueue invocation) a dequeued value —
//	    the undequeued value would block the dequeued one forever.
//
// Condition (b) is checked with an O(n log n) sweep: values sorted by
// enqueue invocation, a pointer over enqueue responses maintaining the
// running maximum dequeue invocation. On a positive verdict the core
// assembles a Lin witness (queueWitness) up to fastQueueWitnessCap
// dequeued values; beyond the cap the Result carries an empty Witness,
// like the SLin breadth engine — FuzzFastpathVsExact keeps verdicts
// and witnesses honest against the exact search.
func fastQueueCheck(ctx context.Context, t trace.Trace, set check.Settings) (Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, true, err
	}
	notWF := func(idx int) (Result, bool, error) {
		return Result{OK: false, Reason: "trace is not well-formed", Nodes: idx + 1}, true, nil
	}
	reject := Result{OK: false, Reason: "no linearization function exists", Nodes: len(t)}

	// Pass 1: well-formedness, fragment membership, operation intervals.
	var ops []*queueOp
	open := map[trace.ClientID]*queueOp{}
	seen := map[trace.Value]struct{}{}
	enqs := map[string]*queueOp{}
	for idx, a := range t {
		if idx&ctxPollMask == ctxPollMask {
			if err := ctx.Err(); err != nil {
				return Result{Nodes: idx}, true, err
			}
		}
		switch a.Kind {
		case trace.Inv:
			if open[a.Client] != nil {
				return notWF(idx)
			}
			if _, dup := seen[a.Input]; dup {
				return Result{}, false, nil
			}
			seen[a.Input] = struct{}{}
			op, arg, ok := strings.Cut(string(adt.Untag(a.Input)), ":")
			o := &queueOp{in: a.Input, inv: idx, res: -1}
			switch {
			case !ok:
				return Result{}, false, nil
			case op == "enq":
				if arg == "" || arg == string(adt.Bottom) || strings.ContainsRune(arg, '\x00') {
					return Result{}, false, nil
				}
				if _, dup := enqs[arg]; dup {
					return Result{}, false, nil // duplicate enqueue value
				}
				o.enq, o.arg = true, arg
				enqs[arg] = o
			case op == "deq" && arg == "":
			default:
				return Result{}, false, nil
			}
			ops = append(ops, o)
			open[a.Client] = o
		case trace.Res:
			o := open[a.Client]
			if o == nil || t[o.inv].Input != a.Input {
				return notWF(idx)
			}
			o.res, o.out = idx, a.Output
			open[a.Client] = nil
		default:
			return notWF(idx)
		}
	}
	if len(open) > 0 {
		for _, o := range open {
			if o != nil {
				return Result{}, false, nil // pending operation: incomplete trace
			}
		}
	}

	// Pass 2: per-operation semantics — conditions (a) and the output
	// grammar. matched maps a dequeued value to its dequeue.
	matched := map[string]*queueOp{}
	for _, o := range ops {
		if o.enq {
			if o.out != adt.WriteOutput() {
				return reject, true, nil
			}
			continue
		}
		vop, varg, ok := strings.Cut(string(o.out), ":")
		if !ok || vop != "v" {
			return reject, true, nil // dequeues can only ever output "v:x"
		}
		if varg == string(adt.Bottom) {
			return Result{}, false, nil // empty dequeue: outside the fragment
		}
		e := enqs[varg]
		if e == nil {
			return reject, true, nil // value never enqueued
		}
		if _, dup := matched[varg]; dup {
			return reject, true, nil // distinct values dequeue at most once
		}
		if o.res < e.inv {
			return reject, true, nil // dequeued before its enqueue existed
		}
		matched[varg] = o
	}

	// Pass 3: condition (b). For each dequeued value v, the largest
	// dequeue invocation among values whose enqueue responded before
	// enq(v) was invoked must not exceed deq(v)'s response.
	type pair struct{ e, d *queueOp }
	var pairs []pair
	for varg, d := range matched {
		pairs = append(pairs, pair{e: enqs[varg], d: d})
	}
	byEnqInv := append([]pair(nil), pairs...)
	sort.Slice(byEnqInv, func(i, j int) bool { return byEnqInv[i].e.inv < byEnqInv[j].e.inv })
	byEnqRes := append([]pair(nil), pairs...)
	sort.Slice(byEnqRes, func(i, j int) bool { return byEnqRes[i].e.res < byEnqRes[j].e.res })
	maxDeqInv, ptr := -1, 0
	for _, p := range byEnqInv {
		for ptr < len(byEnqRes) && byEnqRes[ptr].e.res < p.e.inv {
			if byEnqRes[ptr].d.inv > maxDeqInv {
				maxDeqInv = byEnqRes[ptr].d.inv
			}
			ptr++
		}
		if maxDeqInv >= 0 && p.d.res < maxDeqInv {
			return reject, true, nil
		}
	}

	// Condition (c): an enqueued-but-never-dequeued value must not
	// wholly precede any dequeued value's enqueue.
	minUnmatchedRes, maxMatchedInv := -1, -1
	for varg, e := range enqs {
		if _, ok := matched[varg]; ok {
			if e.inv > maxMatchedInv {
				maxMatchedInv = e.inv
			}
		} else if minUnmatchedRes < 0 || e.res < minUnmatchedRes {
			minUnmatchedRes = e.res
		}
	}
	if minUnmatchedRes >= 0 && minUnmatchedRes < maxMatchedInv {
		return reject, true, nil
	}

	r := Result{OK: true, Nodes: len(t)}
	if set.Witness {
		r.Witness = queueWitness(ops, enqs, matched)
	}
	return r, true, nil
}

// queueOp is one queue operation's interval summary (fastQueueCheck
// pass 1): trace indices of its invocation and response, and — for
// enqueues — its untagged value.
type queueOp struct {
	enq      bool
	arg      string      // untagged enqueue value
	in       trace.Value // full (tagged) input
	inv, res int
	out      trace.Value
}

// fastQueueWitnessCap bounds the queue core's witness assembly: the
// linear-extension step below is quadratic in the dequeued-value
// count, so past the cap a positive verdict reports an empty Witness
// (documented at the dispatch layer; large hunt runs disable witnesses
// anyway).
const fastQueueWitnessCap = 4096

// queueWitness assembles a Lin witness for a trace fastQueueCheck has
// already proven linearizable. The matched values are ordered by a
// common linear extension τ of the three forced precedences —
// res(enq u) < inv(enq v), res(deq u) < inv(deq v), and
// res(deq u) < inv(enq v) each force u before v in FIFO order — via
// Kahn's algorithm (a linearization exists, so the union digraph is
// acyclic); unmatched values follow all matched ones, sorted by
// enqueue invocation (condition (c) makes that placement real-time
// consistent). A single sweep over the responses in trace order then
// linearizes lazily: each operation at its own response, forced
// helpers — τ-earlier enqueues and dequeues still in flight — just
// before, every linearization point provably inside its operation's
// interval. Returns nil past fastQueueWitnessCap (or, defensively, if
// no extension is found).
func queueWitness(ops []*queueOp, enqs, matched map[string]*queueOp) Witness {
	if len(enqs) > fastQueueWitnessCap {
		return nil
	}
	type val struct {
		arg  string
		e, d *queueOp
	}
	rem := make([]*val, 0, len(matched))
	for arg, d := range matched {
		rem = append(rem, &val{arg: arg, e: enqs[arg], d: d})
	}
	sort.Slice(rem, func(i, j int) bool { return rem[i].e.inv < rem[j].e.inv })
	tau := make([]*val, 0, len(rem))
	for len(rem) > 0 {
		pick := -1
		for i, v := range rem {
			free := true
			for _, u := range rem {
				if u == v {
					continue
				}
				if u.e.res < v.e.inv || u.d.res < v.d.inv || u.d.res < v.e.inv {
					free = false
					break
				}
			}
			if free {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil // defensive: the verdict proved an extension exists
		}
		tau = append(tau, rem[pick])
		rem = append(rem[:pick], rem[pick+1:]...)
	}

	// Enqueue linearization order: τ's matched values, then the
	// unmatched ones by invocation.
	enqOrder := make([]*queueOp, 0, len(enqs))
	tauPos := make(map[string]int, len(tau))
	deqVal := make(map[*queueOp]string, len(tau))
	for i, v := range tau {
		enqOrder = append(enqOrder, v.e)
		tauPos[v.arg] = i
		deqVal[v.d] = v.arg
	}
	var unmatched []*queueOp
	for _, e := range enqs {
		if _, ok := matched[e.arg]; !ok {
			unmatched = append(unmatched, e)
		}
	}
	sort.Slice(unmatched, func(i, j int) bool { return unmatched[i].inv < unmatched[j].inv })
	enqOrder = append(enqOrder, unmatched...)
	enqPos := make(map[string]int, len(enqOrder))
	for i, e := range enqOrder {
		enqPos[e.arg] = i
	}

	// Sweep the responses in trace order; pos[op] is the claimed chain
	// prefix once the op linearizes.
	byRes := append([]*queueOp(nil), ops...)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].res < byRes[j].res })
	var chain trace.History
	pos := make(map[*queueOp]int, len(ops))
	eptr, dptr := 0, 0
	linEnqsThrough := func(target int) {
		for eptr <= target {
			e := enqOrder[eptr]
			chain = append(chain, e.in)
			pos[e] = len(chain)
			eptr++
		}
	}
	w := Witness{}
	for _, o := range byRes {
		if o.enq {
			linEnqsThrough(enqPos[o.arg])
		} else {
			target, ok := tauPos[deqVal[o]]
			if !ok {
				return nil // defensive: pass 2 matched every dequeue
			}
			for dptr <= target {
				v := tau[dptr]
				linEnqsThrough(enqPos[v.arg])
				chain = append(chain, v.d.in)
				pos[v.d] = len(chain)
				dptr++
			}
		}
		w[o.res] = chain[:pos[o]].Clone()
	}
	return w
}
