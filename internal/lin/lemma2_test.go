package lin

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Lemma 2's construction, mechanically: for random classically
// linearizable traces, the sequential witness verifies against the
// Appendix A definitions, and the linearization function built from it
// verifies against the new definition (Definitions 6–12). Repeated inputs
// (no occurrence tags) are included deliberately — this direction of
// Theorem 1 survives them.
func TestLemma2Construction(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cases := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
		unique bool
	}{
		{"consensus-unique", adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}, true},
		{"counter-repeated", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}, false},
		{"register-repeated", adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()}, false},
		{"queue-unique", adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.DeqInput()}, true},
	}
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			verified := 0
			for i := 0; i < iters; i++ {
				opts := workload.TraceOpts{
					Clients: 3, Ops: 4 + r.Intn(3), Inputs: tc.inputs,
					PendingProb: 0.2, UniqueTags: tc.unique,
				}
				if i%3 == 2 {
					opts.CorruptProb = 0.5
				}
				tr := workload.Random(tc.f, r, opts)
				res, err := CheckClassical(context.Background(), tc.f, tr)
				if err != nil {
					t.Fatal(err)
				}
				if !res.OK {
					continue
				}
				// The sequential witness satisfies Definitions 41–45.
				if err := VerifySequential(tc.f, tr, res.Sequential); err != nil {
					t.Fatalf("invalid sequential witness: %v\ntrace: %v\nseq: %v", err, tr, res.Sequential)
				}
				// Lemma 2: it converts to a valid new-definition witness.
				w, err := WitnessFromSequential(tr, res.Sequential)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyWitness(tc.f, tr, w); err != nil {
					t.Fatalf("Lemma 2 construction failed: %v\ntrace: %v\nseq: %v\nwitness: %v",
						err, tr, res.Sequential, w)
				}
				verified++
			}
			if verified == 0 {
				t.Fatal("no linearizable traces generated")
			}
		})
	}
}

// The sequential verifier rejects broken witnesses.
func TestVerifySequentialRejects(t *testing.T) {
	w, rd := adt.WriteInput("x"), adt.ReadInput()
	tr := trace.Trace{
		trace.Invoke("c1", 1, w),
		trace.Response("c1", 1, w, adt.WriteOutput()),
		trace.Invoke("c2", 1, rd),
		trace.Response("c2", 1, rd, adt.ReadOutput("x")),
	}
	// Correct order: write (op 0) then read (op 1).
	if err := VerifySequential(adt.Register{}, tr, Linearization{0, 1}); err != nil {
		t.Fatalf("valid witness rejected: %v", err)
	}
	// Reversed order violates both real-time order and the read's output.
	if err := VerifySequential(adt.Register{}, tr, Linearization{1, 0}); err == nil {
		t.Fatal("reversed order accepted")
	}
	// Not a permutation.
	if err := VerifySequential(adt.Register{}, tr, Linearization{0, 0}); err == nil {
		t.Fatal("duplicate op accepted")
	}
	if err := VerifySequential(adt.Register{}, tr, Linearization{0}); err == nil {
		t.Fatal("short witness accepted")
	}
}

// Pending operations appear in the sequential witness (completions are
// total, Definition 40) but carry no output constraint.
func TestSequentialWithPendingOps(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, adt.ProposeInput("a")),
		trace.Invoke("c2", 1, adt.ProposeInput("b")),
		trace.Response("c2", 1, adt.ProposeInput("b"), adt.DecideOutput("a")),
		// c1 stays pending.
	}
	res, err := CheckClassical(context.Background(), adt.Consensus{}, tr)
	if err != nil || !res.OK {
		t.Fatalf("check: %+v %v", res, err)
	}
	if len(res.Sequential) != 2 {
		t.Fatalf("pending op missing from witness: %v", res.Sequential)
	}
	if err := VerifySequential(adt.Consensus{}, tr, res.Sequential); err != nil {
		t.Fatal(err)
	}
	w, err := WitnessFromSequential(tr, res.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWitness(adt.Consensus{}, tr, w); err != nil {
		t.Fatal(err)
	}
}
