package lin

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// operation pairs an invocation index with its response index (or -1 when
// pending) in a well-formed trace.
type operation struct {
	inv, res int
	input    trace.Value
	output   trace.Value // meaningful when res >= 0
}

// collectOps extracts the operations of a well-formed trace in invocation
// order.
func collectOps(t trace.Trace) []operation {
	var ops []operation
	open := map[trace.ClientID]int{} // client -> index into ops
	for i, a := range t {
		switch a.Kind {
		case trace.Inv:
			open[a.Client] = len(ops)
			ops = append(ops, operation{inv: i, res: -1, input: a.Input})
		case trace.Res:
			j := open[a.Client]
			ops[j].res = i
			ops[j].output = a.Output
		}
	}
	return ops
}

// Linearization is the sequential-reordering witness of the classical
// definition: operation indices (into the trace's invocation order) in
// the order the operations appear in the witnessing sequential trace
// (Definition 45's t_seq).
type Linearization []int

// CheckClassical decides linearizability* of t with respect to f
// (Appendix A, Definitions 37–46): t is well-formed and some completion of
// t can be reordered into a sequential trace that agrees with the ADT and
// preserves the order of non-overlapping operations.
//
// Completions append a response for every pending invocation (Definition
// 39 requires completions to be complete traces); since the output function
// is total, the appended outputs are unconstrained by the original trace
// and are chosen by the search.
//
// On success, Result.Sequential holds the witnessing operation order;
// VerifySequential validates it against the definitions, and
// WitnessFromSequential converts it into a new-definition witness by
// Lemma 2's construction.
//
// The search represents placed operations as a uint64 bitmask, so traces
// with more than 63 operations return ErrTooManyOps (a representation
// cap, distinct from ErrBudget's search cap).
//
// The classical search is not structured per trace action, so it has no
// breadth engine: check.WithWorkers is ignored for single-trace classical
// checks (CheckClassicalAll still shards batches across workers), and
// there is no classical Session — use Check, which agrees with
// CheckClassical on unique-input traces by Theorem 1.
func CheckClassical(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	return checkClassicalSettings(ctx, f, t, check.NewSettings(opts...))
}

func checkClassicalSettings(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	ops := collectOps(t)
	if len(ops) > 63 {
		return Result{}, ErrTooManyOps
	}
	s := &classicalSearcher{
		ctx:       ctx,
		f:         f,
		ops:       ops,
		budget:    set.BudgetOr(DefaultBudget),
		memoLimit: set.MemoLimit,
		failed:    map[classicalKey]struct{}{},
		stateIDs:  map[adt.State]uint32{},
		order:     make([]int, len(ops)),
	}
	ok, err := s.run(0, f.Empty())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no legal sequential reordering exists", Nodes: s.nodes}, nil
	}
	return Result{OK: true, Sequential: append(Linearization{}, s.order...), Nodes: s.nodes}, nil
}

// classicalKey is the fixed-size memoization key of the classical search:
// the placed-operations bitmask and the interned folded ADT state. States
// are interned to dense ids so the key carries no string and lookups do
// not re-serialize the state.
type classicalKey struct {
	placed  uint64
	stateID uint32
}

type classicalSearcher struct {
	ctx       context.Context
	f         adt.Folder
	ops       []operation
	budget    int
	memoLimit int
	nodes     int
	failed    map[classicalKey]struct{}
	stateIDs  map[adt.State]uint32
	// order[k] is the k-th linearized operation on the successful path.
	order []int
}

// stateID interns a folded ADT state to a dense id.
func (s *classicalSearcher) stateID(st adt.State) uint32 {
	if id, ok := s.stateIDs[st]; ok {
		return id
	}
	id := uint32(len(s.stateIDs))
	s.stateIDs[st] = id
	return id
}

// run linearizes operations one at a time. placed is the bitmask of
// already-linearized operations and st the folded ADT state they produced.
// An operation j may be linearized next iff every operation k whose
// response precedes j's invocation in real time is already placed
// (Definition 44), and — when j completed in the original trace — its
// output matches the ADT's output at the current state.
func (s *classicalSearcher) run(placed uint64, st adt.State) (bool, error) {
	s.nodes++
	if s.nodes > s.budget {
		return false, ErrBudget
	}
	if s.nodes&ctxPollMask == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	if placed == uint64(1)<<len(s.ops)-1 {
		return true, nil
	}
	key := classicalKey{placed: placed, stateID: s.stateID(st)}
	if _, hit := s.failed[key]; hit {
		return false, nil
	}
	for j, op := range s.ops {
		if placed&(1<<j) != 0 {
			continue
		}
		// Real-time order: all operations completed before op's
		// invocation must already be placed.
		eligible := true
		for k, other := range s.ops {
			if placed&(1<<k) != 0 || k == j {
				continue
			}
			if other.res >= 0 && other.res < op.inv {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		// ADT agreement for completed operations; pending operations take
		// whatever output the completion assigns, so nothing to check.
		if op.res >= 0 && s.f.Out(st, op.input) != op.output {
			continue
		}
		ok, err := s.run(placed|1<<j, s.f.Step(st, op.input))
		if err != nil {
			return false, err
		}
		if ok {
			s.order[bits.OnesCount64(placed)] = j
			return true, nil
		}
	}
	if s.memoLimit <= 0 || len(s.failed) < s.memoLimit {
		s.failed[key] = struct{}{}
	}
	return false, nil
}

// VerifyWitness checks a linearization function against Definitions 6–12
// directly: it explains every response, Validity holds at every commit
// index, and commit histories are totally ordered by strict prefix. It is
// used by tests to validate Check's positive verdicts independently of the
// search that produced them.
func VerifyWitness(f adt.Folder, t trace.Trace, w Witness) error {
	var commits []int
	for i, a := range t {
		if a.Kind != trace.Res {
			continue
		}
		commits = append(commits, i)
		g, ok := w[i]
		if !ok {
			return fmtErr("no commit history for response index %d", i)
		}
		// Explains (Definition 7).
		out, err := f.Apply(g)
		if err != nil {
			return err
		}
		if out != a.Output {
			return fmtErr("index %d: history %v explains %q, trace has %q", i, g, out, a.Output)
		}
		// Validity (Definitions 10–11).
		if len(g) == 0 || g.Last() != a.Input {
			return fmtErr("index %d: history %v does not end with input %q", i, g, a.Input)
		}
		if !g.Elems().SubsetOf(t.InputsBeforeMultiset(i)) {
			return fmtErr("index %d: history %v uses inputs not invoked before it", i, g)
		}
	}
	// Commit-Order (Definition 12).
	for x := 0; x < len(commits); x++ {
		for y := x + 1; y < len(commits); y++ {
			gi, gj := w[commits[x]], w[commits[y]]
			if !gi.IsStrictPrefixOf(gj) && !gj.IsStrictPrefixOf(gi) {
				return fmtErr("commit histories %v and %v are not strict-prefix ordered", gi, gj)
			}
		}
	}
	return nil
}

func fmtErr(format string, args ...any) error {
	return &witnessError{msg: fmt.Sprintf(format, args...)}
}

type witnessError struct{ msg string }

func (e *witnessError) Error() string { return "lin: invalid witness: " + e.msg }
