package lin

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// operation pairs an invocation index with its response index (or -1 when
// pending) in a well-formed trace.
type operation struct {
	inv, res int
	input    trace.Value
	output   trace.Value // meaningful when res >= 0
}

// collectOps extracts the operations of a well-formed trace in invocation
// order.
func collectOps(t trace.Trace) []operation {
	var ops []operation
	open := map[trace.ClientID]int{} // client -> index into ops
	for i, a := range t {
		switch a.Kind {
		case trace.Inv:
			open[a.Client] = len(ops)
			ops = append(ops, operation{inv: i, res: -1, input: a.Input})
		case trace.Res:
			j := open[a.Client]
			ops[j].res = i
			ops[j].output = a.Output
		}
	}
	return ops
}

// Linearization is the sequential-reordering witness of the classical
// definition: operation indices (into the trace's invocation order) in
// the order the operations appear in the witnessing sequential trace
// (Definition 45's t_seq).
type Linearization []int

// CheckClassical decides linearizability* of t with respect to f
// (Appendix A, Definitions 37–46): t is well-formed and some completion of
// t can be reordered into a sequential trace that agrees with the ADT and
// preserves the order of non-overlapping operations.
//
// Completions append a response for every pending invocation (Definition
// 39 requires completions to be complete traces); since the output function
// is total, the appended outputs are unconstrained by the original trace
// and are chosen by the search.
//
// On success, Result.Sequential holds the witnessing operation order;
// VerifySequential validates it against the definitions, and
// WitnessFromSequential converts it into a new-definition witness by
// Lemma 2's construction.
//
// The search accepts traces of any length (DESIGN.md, decision 13):
// placed-operation sets use a single-word bitmask for traces of at most
// 63 operations and spill to a sparse word-array set (check.BitSet) with
// an incrementally-maintained 128-bit digest in the memo key beyond that.
// The historical ErrTooManyOps representation cap no longer fires;
// classicalRef retains the capped bitmask engine as the reference the
// property tests diff against.
//
// The classical search is not structured per trace action, so it has no
// breadth engine: check.WithWorkers is ignored for single-trace classical
// checks (CheckClassicalAll still shards batches across workers), and
// there is no classical Session — use Check, which agrees with
// CheckClassical on unique-input traces by Theorem 1.
func CheckClassical(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	return checkClassicalSettings(ctx, f, t, check.NewSettings(opts...))
}

func checkClassicalSettings(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	ops := collectOps(t)
	s := &classicalSearcher{
		ctx:       ctx,
		f:         f,
		ops:       ops,
		budget:    set.BudgetOr(DefaultBudget),
		memoLimit: set.MemoLimit,
		failed:    map[classicalKey]struct{}{},
		stateIDs:  map[adt.State]uint32{},
		order:     make([]int, len(ops)),
		spill:     len(ops) > smallPlacedOps,
	}
	if s.spill {
		s.placedSpill = check.NewBitSet(len(ops))
	}
	s.initPrecedence()
	ok, err := s.run(f.Empty())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no legal sequential reordering exists", Nodes: s.nodes}, nil
	}
	return Result{OK: true, Sequential: append(Linearization{}, s.order...), Nodes: s.nodes}, nil
}

// smallPlacedOps is the operation count up to which placed sets stay on
// the single-word fast path: the memo key then carries the exact bitmask
// (no digest involved), matching the pre-decision-13 engine bit for bit.
const smallPlacedOps = 63

// classicalKey is the fixed-size memoization key of the classical search:
// the placed-operation set and the interned folded ADT state. On the
// fast path w0 is the exact placed bitmask (w1 is 0); on the spill path
// (w0, w1) is the placed BitSet's 128-bit digest, the decision-7
// discipline extended to placed sets (a run uses one representation
// throughout, so the two keyings never mix). States are interned to
// dense ids so the key carries no string and lookups do not re-serialize
// the state.
type classicalKey struct {
	w0, w1  uint64
	stateID uint32
}

type classicalSearcher struct {
	ctx       context.Context
	f         adt.Folder
	ops       []operation
	budget    int
	memoLimit int
	nodes     int
	failed    map[classicalKey]struct{}
	stateIDs  map[adt.State]uint32
	// order[k] is the k-th linearized operation on the successful path.
	order []int

	// Real-time precedence (Definition 44) in O(n) space: operations are
	// in invocation order, so the operations k must precede are exactly
	// the suffix ops[first[k]:] (first[k] = first operation invoked after
	// k's response; n for pending operations, which precede nothing).
	// Operation j is then eligible iff j < min{first[k] : k unplaced,
	// completed} — k's own first[k] is always > k, so j never blocks
	// itself. curMin maintains that minimum incrementally over cnt (the
	// multiset of first values of unplaced completed operations), and the
	// candidate loop runs only up to it, replacing the former per-node
	// O(n²) eligibility rescan with a scan of the open real-time window
	// (load-bearing at decision-13 trace lengths).
	first  []int32
	cnt    []int32 // indexed by first value, 0..n
	curMin int

	// The placed set: placedSmall on the ≤63-op fast path, placedSpill
	// (with its incremental digest) beyond.
	spill       bool
	placedSmall uint64
	placedSpill check.BitSet
	nplaced     int

	// audit shadows the spill-path memo with exact placed-set keys under
	// -tags memocheck; a zero-size no-op otherwise (memocheck_off.go).
	audit classicalAudit
}

// initPrecedence computes first[k] — the start of the suffix k must
// precede, found by binary search on the (increasing) invocation indices
// — and seeds the cnt multiset and its running minimum with every
// completed operation unplaced.
func (s *classicalSearcher) initPrecedence() {
	n := len(s.ops)
	s.first = make([]int32, n)
	s.cnt = make([]int32, n+1)
	s.curMin = n
	for k, op := range s.ops {
		s.first[k] = int32(n)
		if op.res >= 0 {
			lo, hi := k+1, n // ops[k].inv < ops[k].res, so the suffix starts past k
			for lo < hi {
				mid := (lo + hi) / 2
				if s.ops[mid].inv > op.res {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			s.first[k] = int32(lo)
			s.cnt[lo]++
			if lo < s.curMin {
				s.curMin = lo
			}
		}
	}
}

// stateID interns a folded ADT state to a dense id.
func (s *classicalSearcher) stateID(st adt.State) uint32 {
	if id, ok := s.stateIDs[st]; ok {
		return id
	}
	id := uint32(len(s.stateIDs))
	s.stateIDs[st] = id
	return id
}

func (s *classicalSearcher) isPlaced(j int) bool {
	if s.spill {
		return s.placedSpill.Has(j)
	}
	return s.placedSmall&(1<<uint(j)) != 0
}

// place marks operation j linearized, updating the placed set (and its
// digest on the spill path) and the eligibility window: removing a
// completed operation from the cnt multiset may advance curMin forward
// past emptied slots. unplace undoes it on backtrack — re-adding first[j]
// restores the exact minimum in O(1), so curMin is always the true
// minimum of the multiset.
func (s *classicalSearcher) place(j int) {
	if s.spill {
		s.placedSpill.Add(j)
	} else {
		s.placedSmall |= 1 << uint(j)
	}
	s.nplaced++
	if s.ops[j].res >= 0 {
		f := int(s.first[j])
		s.cnt[f]--
		if f == s.curMin {
			for s.curMin < len(s.ops) && s.cnt[s.curMin] == 0 {
				s.curMin++
			}
		}
	}
}

func (s *classicalSearcher) unplace(j int) {
	if s.spill {
		s.placedSpill.Remove(j)
	} else {
		s.placedSmall &^= 1 << uint(j)
	}
	s.nplaced--
	if s.ops[j].res >= 0 {
		f := int(s.first[j])
		s.cnt[f]++
		if f < s.curMin {
			s.curMin = f
		}
	}
}

func (s *classicalSearcher) key(st adt.State) classicalKey {
	id := s.stateID(st)
	if s.spill {
		d := s.placedSpill.Digest()
		return classicalKey{w0: d[0], w1: d[1], stateID: id}
	}
	return classicalKey{w0: s.placedSmall, stateID: id}
}

// run linearizes operations one at a time against the searcher's placed
// set; st is the folded ADT state the placed operations produced. An
// operation j may be linearized next iff every operation whose response
// precedes j's invocation in real time is already placed (Definition 44;
// equivalently j < curMin — the candidate loop never looks past the open
// real-time window), and — when j completed in the original trace — its
// output matches the ADT's output at the current state.
func (s *classicalSearcher) run(st adt.State) (bool, error) {
	s.nodes++
	if s.nodes > s.budget {
		return false, ErrBudget
	}
	if s.nodes&ctxPollMask == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	if s.nplaced == len(s.ops) {
		return true, nil
	}
	key := s.key(st)
	if _, hit := s.failed[key]; hit {
		s.auditHit(key)
		return false, nil
	}
	// Place/unplace pairs inside the loop restore cnt and curMin exactly,
	// so the snapshot stays the eligibility bound for every iteration.
	lim := s.curMin
	for j := 0; j < lim; j++ {
		if s.isPlaced(j) {
			continue
		}
		op := &s.ops[j]
		// ADT agreement for completed operations; pending operations take
		// whatever output the completion assigns, so nothing to check.
		if op.res >= 0 && s.f.Out(st, op.input) != op.output {
			continue
		}
		s.place(j)
		ok, err := s.run(s.f.Step(st, op.input))
		s.unplace(j)
		if err != nil {
			return false, err
		}
		if ok {
			s.order[s.nplaced] = j
			return true, nil
		}
	}
	if s.memoLimit <= 0 || len(s.failed) < s.memoLimit {
		s.failed[key] = struct{}{}
		s.auditInsert(key)
	}
	return false, nil
}

// VerifyWitness checks a linearization function against Definitions 6–12
// directly: it explains every response, Validity holds at every commit
// index, and commit histories are totally ordered by strict prefix. It is
// used by tests to validate Check's positive verdicts independently of the
// search that produced them.
func VerifyWitness(f adt.Folder, t trace.Trace, w Witness) error {
	var commits []int
	for i, a := range t {
		if a.Kind != trace.Res {
			continue
		}
		commits = append(commits, i)
		g, ok := w[i]
		if !ok {
			return fmtErr("no commit history for response index %d", i)
		}
		// Explains (Definition 7).
		out, err := f.Apply(g)
		if err != nil {
			return err
		}
		if out != a.Output {
			return fmtErr("index %d: history %v explains %q, trace has %q", i, g, out, a.Output)
		}
		// Validity (Definitions 10–11).
		if len(g) == 0 || g.Last() != a.Input {
			return fmtErr("index %d: history %v does not end with input %q", i, g, a.Input)
		}
		if !g.Elems().SubsetOf(t.InputsBeforeMultiset(i)) {
			return fmtErr("index %d: history %v uses inputs not invoked before it", i, g)
		}
	}
	// Commit-Order (Definition 12).
	for x := 0; x < len(commits); x++ {
		for y := x + 1; y < len(commits); y++ {
			gi, gj := w[commits[x]], w[commits[y]]
			if !gi.IsStrictPrefixOf(gj) && !gj.IsStrictPrefixOf(gi) {
				return fmtErr("commit histories %v and %v are not strict-prefix ordered", gi, gj)
			}
		}
	}
	return nil
}

func fmtErr(format string, args ...any) error {
	return &witnessError{msg: fmt.Sprintf(format, args...)}
}

type witnessError struct{ msg string }

func (e *witnessError) Error() string { return "lin: invalid witness: " + e.msg }
