//go:build !memocheck

package lin

// memocheckEnabled gates the digest-collision audit (DESIGN.md decision
// 7 risk): the default build compiles the audit calls away entirely, so
// the hot path stays allocation-free. Build with -tags memocheck to
// store the full string key alongside every 128-bit memo digest and
// count collisions (expected zero); the tagged test asserts the count.
const memocheckEnabled = false

// memoAudit is the no-op audit table of the default build.
type memoAudit struct{}

func (s *searcher) auditInsert(memoKey) {}
func (s *searcher) auditHit(memoKey)    {}

// MemoCollisions reports digest collisions observed in the memo tables;
// always zero without the memocheck build tag (the audit is compiled
// out).
func MemoCollisions() uint64 { return 0 }

// classicalAudit is the no-op audit table of the default build for the
// classical checker's spill-path memo (decision 13's lossy BitSet
// digest beyond 63 operations).
type classicalAudit struct{}

func (s *classicalSearcher) auditInsert(classicalKey) {}
func (s *classicalSearcher) auditHit(classicalKey)    {}

// ClassicalMemoCollisions reports digest collisions observed in the
// classical checker's spill-path memo tables; always zero without the
// memocheck build tag.
func ClassicalMemoCollisions() uint64 { return 0 }
