package lin

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestE8DefinitionEquivalence is experiment E8: the paper's new definition
// of linearizability (package-level Check) agrees with the classical
// definition (CheckClassical) on randomly generated traces with unique
// inputs — Theorem 1/4. Traces are drawn both from a linearizable-by-
// construction generator and from a corrupting generator, across four
// ADTs. See TestRepeatedEventsDivergence for the repeated-inputs caveat.
func TestE8DefinitionEquivalence(t *testing.T) {
	type tcase struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}
	cases := []tcase{
		{"consensus", adt.Consensus{}, []trace.Value{
			adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c"),
		}},
		{"register", adt.Register{}, []trace.Value{
			adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput(),
		}},
		{"counter", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{"queue", adt.Queue{}, []trace.Value{
			adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput(),
		}},
	}
	iters := 400
	if testing.Short() {
		iters = 80
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			agreeLin, agreeNon := 0, 0
			for i := 0; i < iters; i++ {
				opts := workload.TraceOpts{
					Clients:     2 + r.Intn(2),
					Ops:         3 + r.Intn(4),
					Inputs:      tc.inputs,
					PendingProb: 0.2,
					UniqueTags:  true,
				}
				if i%2 == 1 {
					opts.CorruptProb = 0.5
				}
				tr := workload.Random(tc.f, r, opts)
				r1, err := Check(context.Background(), tc.f, tr)
				if err != nil {
					t.Fatalf("Check: %v on %v", err, tr)
				}
				r2, err := CheckClassical(context.Background(), tc.f, tr)
				if err != nil {
					t.Fatalf("CheckClassical: %v on %v", err, tr)
				}
				if r1.OK != r2.OK {
					t.Fatalf("definitions disagree (Theorem 1 violated): new=%v classical=%v on %v",
						r1.OK, r2.OK, tr)
				}
				if r1.OK {
					agreeLin++
					if err := VerifyWitness(tc.f, tr, r1.Witness); err != nil {
						t.Fatalf("invalid witness: %v on %v", err, tr)
					}
					if err := VerifySequential(tc.f, tr, r2.Sequential); err != nil {
						t.Fatalf("invalid sequential witness: %v on %v", err, tr)
					}
				} else {
					agreeNon++
				}
				// Uncorrupted traces must always be linearizable.
				if opts.CorruptProb == 0 && !r1.OK {
					t.Fatalf("linearizable-by-construction trace rejected: %v", tr)
				}
			}
			if agreeLin == 0 || agreeNon == 0 {
				t.Fatalf("generator did not exercise both verdicts: lin=%d non=%d", agreeLin, agreeNon)
			}
		})
	}
}

// TestRepeatedEventsDivergence documents a finding of this reproduction:
// with repeated events (identical inputs from different invocations), the
// paper's new definition is strictly WEAKER than the classical one, so
// Theorem 1/4 fails as stated. The new definition's Validity requires a
// commit history to end with the response's input but is blind to which
// occurrence of the input it ends with; a client's operation can therefore
// "borrow" another client's identical invocation and commit before an
// operation that really-time-precedes it.
//
// Concretely: c1 completes write(x) and then reads ⊥ — classically
// impossible — but the new definition accepts the trace via the chain
//
//	[r], [r r], [r r w], [r r w r], [r r w r w]
//
// assigning c1's read the length-2 prefix whose final "r" is justified by
// c2's second read invocation.
func TestRepeatedEventsDivergence(t *testing.T) {
	w, rd := adt.WriteInput("x"), adt.ReadInput()
	tr := trace.Trace{
		trace.Invoke("c2", 1, rd),
		trace.Invoke("c1", 1, w),
		trace.Response("c2", 1, rd, adt.ReadOutput(adt.Bottom)),
		trace.Invoke("c2", 1, rd),
		trace.Response("c1", 1, w, adt.WriteOutput()),
		trace.Invoke("c1", 1, rd),
		trace.Response("c1", 1, rd, adt.ReadOutput(adt.Bottom)), // reads ⊥ after own completed write
		trace.Invoke("c1", 1, w),
		trace.Response("c2", 1, rd, adt.ReadOutput("x")),
		trace.Response("c1", 1, w, adt.WriteOutput()),
	}
	rNew, err := Check(context.Background(), adt.Register{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	rCls, err := CheckClassical(context.Background(), adt.Register{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rNew.OK {
		t.Fatal("the new definition accepts this trace (per its literal statement)")
	}
	if err := VerifyWitness(adt.Register{}, tr, rNew.Witness); err != nil {
		t.Fatalf("the accepting witness must satisfy Definitions 6–12: %v", err)
	}
	if rCls.OK {
		t.Fatal("the classical definition rejects this trace (read after own completed write)")
	}
}

// One direction of Theorem 1 does survive repeated events: classically
// linearizable traces satisfy the new definition (the Appendix B proof of
// that direction does not rely on occurrence identity).
func TestClassicalImpliesNewWithRepeats(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	inputs := []trace.Value{adt.IncInput(), adt.GetInput()}
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for i := 0; i < iters; i++ {
		opts := workload.TraceOpts{Clients: 3, Ops: 4 + r.Intn(3), Inputs: inputs}
		if i%2 == 1 {
			opts.CorruptProb = 0.4
		}
		tr := workload.Random(adt.Counter{}, r, opts)
		rCls, err := CheckClassical(context.Background(), adt.Counter{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !rCls.OK {
			continue
		}
		rNew, err := Check(context.Background(), adt.Counter{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !rNew.OK {
			t.Fatalf("classical ⇒ new violated on %v", tr)
		}
	}
}
