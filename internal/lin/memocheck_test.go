//go:build memocheck

package lin

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestMemoDigestCollisionsZero drives the checker across a broad random
// sweep with the full-string audit enabled and asserts that no 128-bit
// memo digest ever stood for two distinct search states (the DESIGN.md
// decision 7 residual risk, measured instead of assumed).
//
// Run with: go test -tags memocheck ./internal/lin
func TestMemoDigestCollisionsZero(t *testing.T) {
	cases := []struct {
		f      adt.Folder
		inputs []trace.Value
	}{
		{adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}},
		{adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()}},
		{adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.DeqInput()}},
	}
	checks := 0
	for _, tc := range cases {
		r := rand.New(rand.NewSource(1234))
		for i := 0; i < 400; i++ {
			opts := workload.TraceOpts{
				Clients: 3, Ops: 4 + r.Intn(4), Inputs: tc.inputs,
				PendingProb: 0.2, UniqueTags: i%3 == 0,
			}
			if i%2 == 1 {
				opts.CorruptProb = 0.5
			}
			tr := workload.Random(tc.f, r, opts)
			if _, err := Check(context.Background(), tc.f, tr); err != nil {
				t.Fatalf("%s trace %d: %v", tc.f.Name(), i, err)
			}
			checks++
		}
	}
	// A wide exhaustive (never-linearizable) search: the memo table is
	// exercised hardest when every branch fails and re-converges.
	var hard trace.Trace
	for i := 0; i < 6; i++ {
		c := trace.ClientID(fmt.Sprintf("h%d", i))
		hard = append(hard, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))))
	}
	for i := 0; i < 6; i++ {
		c := trace.ClientID(fmt.Sprintf("h%d", i))
		in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))
		hard = append(hard, trace.Response(c, 1, in, adt.DecideOutput(fmt.Sprintf("v%d", i%2))))
	}
	res, err := Check(context.Background(), adt.Consensus{}, hard, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("split-decision trace checked linearizable")
	}
	checks++

	if n := MemoCollisions(); n != 0 {
		t.Fatalf("%d memo digest collisions across %d checks (expected zero)", n, checks)
	}
	t.Logf("0 collisions across %d checks", checks)
}

// TestClassicalSpillMemoCollisionsZero audits the classical checker's
// spill-path memo (DESIGN.md decision 13: beyond 63 operations the key
// carries a lossy 128-bit BitSet digest of the placed set instead of the
// exact bitmask). Every digest insert and hit is re-derived against the
// full placed set; the count of mismatches must stay zero.
//
// Run with: go test -tags memocheck ./internal/lin
func TestClassicalSpillMemoCollisionsZero(t *testing.T) {
	checks := 0
	// Overlap-windowed spill traces: window w gives 2^(n/w)-ish reordering
	// choice, and the corrupted variants force failing branches that
	// re-converge on shared placed sets — the memo's hottest shape.
	for _, n := range []int{64, 80, 128, 200} {
		for _, window := range []int{2, 3, 4} {
			for _, corrupt := range []int{-1, n / 2, n - 2} {
				tr := seqTrace(n, window, corrupt)
				res, err := CheckClassical(context.Background(), adt.Consensus{}, tr,
					check.WithBudget(50_000_000))
				if err != nil {
					t.Fatalf("n=%d window=%d corrupt=%d: %v", n, window, corrupt, err)
				}
				if want := corrupt < 0; res.OK != want {
					t.Fatalf("n=%d window=%d corrupt=%d: verdict %v, want %v", n, window, corrupt, res.OK, want)
				}
				checks++
			}
		}
	}
	// Random spill traces: pending tails and corrupted outputs over a
	// denser overlap structure than the windowed builder produces.
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		opts := workload.TraceOpts{
			Clients: 4, Ops: 64 + r.Intn(32),
			Inputs:      []trace.Value{adt.IncInput(), adt.GetInput()},
			PendingProb: 0.1, UniqueTags: true,
		}
		if i%2 == 1 {
			opts.CorruptProb = 0.1
		}
		tr := workload.Random(adt.Counter{}, r, opts)
		if _, err := CheckClassical(context.Background(), adt.Counter{}, tr,
			check.WithBudget(50_000_000)); err != nil {
			t.Fatalf("random spill trace %d: %v", i, err)
		}
		checks++
	}

	if n := ClassicalMemoCollisions(); n != 0 {
		t.Fatalf("%d classical spill-digest collisions across %d checks (expected zero)", n, checks)
	}
	t.Logf("0 classical spill collisions across %d checks", checks)
}
