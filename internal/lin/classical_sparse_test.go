package lin

// Tests for the sparse placed-set classical engine (DESIGN.md, decision
// 13): property and fuzz diffs against the retained bitmask reference
// (classicalRef) on the ≤63-op range — verdict, witness validity AND
// exact node counts, since the sparse engine enumerates the same
// candidates in the same order — plus boundary coverage at 63/64/65/128
// operations, where the former ErrTooManyOps sentinel must never fire
// and verdicts must agree with the new-definition checker (Theorem 1 on
// unique-input traces).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// diffClassicalAgainstRef runs both classical engines on tr and fails on
// any divergence. Returns the shared verdict.
func diffClassicalAgainstRef(t *testing.T, f adt.Folder, tr trace.Trace) bool {
	t.Helper()
	opts := []check.Option{check.WithBudget(50_000_000)}
	got, err := CheckClassical(context.Background(), f, tr, opts...)
	if err != nil {
		t.Fatalf("sparse engine: %v\ntrace: %v", err, tr)
	}
	want, err := classicalRef(context.Background(), f, tr, opts...)
	if err != nil {
		t.Fatalf("reference engine: %v\ntrace: %v", err, tr)
	}
	if got.OK != want.OK {
		t.Fatalf("verdict disagreement: sparse=%v ref=%v\ntrace: %v", got.OK, want.OK, tr)
	}
	if got.Nodes != want.Nodes {
		t.Fatalf("node-count disagreement (same candidate order ⇒ identical trees): sparse=%d ref=%d\ntrace: %v",
			got.Nodes, want.Nodes, tr)
	}
	if got.OK {
		if err := VerifySequential(f, tr, got.Sequential); err != nil {
			t.Fatalf("sparse witness invalid: %v\ntrace: %v", err, tr)
		}
		if err := VerifySequential(f, tr, want.Sequential); err != nil {
			t.Fatalf("reference witness invalid: %v\ntrace: %v", err, tr)
		}
	}
	return got.OK
}

// TestClassicalSparseMatchesRefProperty sweeps E8-style random traces
// (clean and corrupted, pending tails, repeated and unique inputs)
// through both engines.
func TestClassicalSparseMatchesRefProperty(t *testing.T) {
	families := []struct {
		f      adt.Folder
		inputs []trace.Value
	}{
		{adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}},
		{adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()}},
		{adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
	}
	r := rand.New(rand.NewSource(13))
	sawOK, sawBad := 0, 0
	for _, fam := range families {
		for i := 0; i < 250; i++ {
			opts := workload.TraceOpts{
				Clients: 2 + r.Intn(3), Ops: 3 + r.Intn(5), Inputs: fam.inputs,
				PendingProb: 0.2, UniqueTags: i%3 != 0,
			}
			if i%2 == 1 {
				opts.CorruptProb = 0.5
			}
			tr := workload.Random(fam.f, r, opts)
			if diffClassicalAgainstRef(t, fam.f, tr) {
				sawOK++
			} else {
				sawBad++
			}
		}
	}
	if sawOK == 0 || sawBad == 0 {
		t.Fatalf("degenerate sweep: %d linearizable, %d not — both verdicts must be exercised", sawOK, sawBad)
	}
}

// seqTrace builds an n-operation trace of unique tagged proposals:
// sequential by default, with every window-th pair of neighbours
// overlapping when window > 0, so long traces exercise real reordering
// choice without blowing up the search.
func seqTrace(n, window int, corruptAt int) trace.Trace {
	tr := make(trace.Trace, 0, 2*n)
	cons := adt.Consensus{}
	st := cons.Empty()
	for i := 0; i < n; i++ {
		c := trace.ClientID("c" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("v"), strconv.Itoa(i))
		out := cons.Out(st, in)
		st = cons.Step(st, in)
		if corruptAt == i {
			out = adt.DecideOutput("corrupt")
		}
		if window > 0 && i%window == 0 && i+1 < n {
			// Overlap with the next operation: Inv i, Inv i+1, Res i.
			c2 := trace.ClientID("c" + strconv.Itoa(i+1))
			in2 := adt.Tag(adt.ProposeInput("v"), strconv.Itoa(i+1))
			out2 := cons.Out(st, in2)
			st = cons.Step(st, in2)
			if corruptAt == i+1 {
				out2 = adt.DecideOutput("corrupt")
			}
			tr = append(tr,
				trace.Invoke(c, 1, in), trace.Invoke(c2, 1, in2),
				trace.Response(c, 1, in, out), trace.Response(c2, 1, in2, out2))
			i++
			continue
		}
		tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, out))
	}
	return tr
}

// TestClassicalBoundaries replaces the former ErrTooManyOps sentinel
// expectations: at 63 (fast-path edge), 64, 65 (first spill words) and
// 128 operations the checker returns verdicts, never the deprecated
// sentinel, the witnesses verify, and the verdict agrees with the
// new-definition checker on these unique-input traces (Theorem 1).
func TestClassicalBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65, 128} {
		// The corrupted variant breaks an early operation: both searches
		// then refute within the first real-time window instead of
		// backtracking over every reordering of a long prefix.
		for _, corrupt := range []int{-1, 9} {
			tr := seqTrace(n, 4, corrupt)
			res, err := CheckClassical(context.Background(), adt.Consensus{}, tr)
			if errors.Is(err, ErrTooManyOps) {
				t.Fatalf("n=%d corrupt=%d: the deprecated ErrTooManyOps sentinel fired", n, corrupt)
			}
			if err != nil {
				t.Fatalf("n=%d corrupt=%d: %v", n, corrupt, err)
			}
			if want := corrupt < 0; res.OK != want {
				t.Fatalf("n=%d corrupt=%d: verdict %v, want %v", n, corrupt, res.OK, want)
			}
			if res.OK {
				if len(res.Sequential) != n {
					t.Fatalf("n=%d: witness places %d operations", n, len(res.Sequential))
				}
				if err := VerifySequential(adt.Consensus{}, tr, res.Sequential); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
			newDef, err := Check(context.Background(), adt.Consensus{}, tr)
			if err != nil {
				t.Fatalf("n=%d corrupt=%d: new-definition check: %v", n, corrupt, err)
			}
			if newDef.OK != res.OK {
				t.Fatalf("n=%d corrupt=%d: classical=%v, new definition=%v (Theorem 1 violated)",
					n, corrupt, res.OK, newDef.OK)
			}
		}
	}
}

// TestClassicalFastPathEdge pins the representation switch: 63 ops stay
// on the single-word fast path, 64 spill — and both sides of the edge
// agree with the reference (which still caps at 63) resp. the
// new-definition checker.
func TestClassicalFastPathEdge(t *testing.T) {
	at63 := seqTrace(63, 4, -1)
	diffClassicalAgainstRef(t, adt.Consensus{}, at63)
	if _, err := classicalRef(context.Background(), adt.Consensus{}, seqTrace(64, 4, -1)); !errors.Is(err, errClassicalRefCap) {
		t.Fatalf("reference engine must keep its cap: %v", err)
	}
}

// TestClassicalBatchLongTraces: CheckClassicalAll shards uncapped
// classical checks across workers, long and short traces mixed.
func TestClassicalBatchLongTraces(t *testing.T) {
	traces := []trace.Trace{
		seqTrace(10, 3, -1), seqTrace(100, 4, -1), seqTrace(70, 0, 9), seqTrace(128, 5, 64),
	}
	res, err := CheckClassicalAll(context.Background(), adt.Consensus{}, traces, check.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false}
	for i, r := range res {
		if r.OK != want[i] {
			t.Fatalf("trace %d: verdict %v, want %v", i, r.OK, want[i])
		}
	}
}

// TestClassicalSparseBudgetAndCancel: the spill path honours the budget
// sentinel and context cancellation exactly like the fast path.
func TestClassicalSparseBudgetAndCancel(t *testing.T) {
	long := seqTrace(100, 4, -1)
	if _, err := CheckClassical(context.Background(), adt.Consensus{}, long, check.WithBudget(5)); !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget on the spill path: %v, want ErrBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckClassical(ctx, adt.Consensus{}, long); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled spill-path check: %v, want context.Canceled", err)
	}
}

// fuzzClassicalTrace decodes fuzz bytes into a consensus trace: two
// bytes per action over four clients, mirroring diffcheck's decoder
// (responses usually answer the pending invocation, outputs drawn from a
// plausible pool, action count capped for fuzz-friendly budgets).
func fuzzClassicalTrace(data []byte) trace.Trace {
	clients := []trace.ClientID{"c1", "c2", "c3", "c4"}
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
	outputs := []trace.Value{adt.DecideOutput("a"), adt.DecideOutput("b")}
	pending := map[trace.ClientID]trace.Value{}
	var tr trace.Trace
	for i := 0; i+1 < len(data) && len(tr) < 16; i += 2 {
		b, o := data[i], data[i+1]
		c := clients[int(b&3)]
		if (b>>2)&1 == 0 {
			if _, open := pending[c]; open {
				continue
			}
			in := inputs[int(b>>3)%len(inputs)]
			if b&0x80 != 0 {
				in = adt.Tag(in, fmt.Sprintf("%d", i))
			}
			tr = append(tr, trace.Invoke(c, 1, in))
			pending[c] = in
		} else {
			in, ok := pending[c]
			if !ok {
				continue
			}
			tr = append(tr, trace.Response(c, 1, in, outputs[int(o)%len(outputs)]))
			delete(pending, c)
		}
	}
	return tr
}

// FuzzClassicalSparseVsRef fuzzes byte-decoded traces through both
// classical engines; CI's nightly job runs a long pass alongside the
// diffcheck agreement targets.
func FuzzClassicalSparseVsRef(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x04, 0x00})
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x04, 0x01, 0x05, 0x00})
	f.Add([]byte{0x80, 0x00, 0x89, 0x00, 0x04, 0x00, 0x05, 0x01, 0x02, 0x00, 0x06, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := fuzzClassicalTrace(data)
		if !tr.WellFormed() {
			return
		}
		opts := []check.Option{check.WithBudget(2_000_000)}
		got, gerr := CheckClassical(context.Background(), adt.Consensus{}, tr, opts...)
		want, werr := classicalRef(context.Background(), adt.Consensus{}, tr, opts...)
		if gerr != nil || werr != nil {
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("error disagreement: sparse=%v ref=%v\ntrace: %v", gerr, werr, tr)
			}
			return // both exhausted the shared budget
		}
		if got.OK != want.OK || got.Nodes != want.Nodes {
			t.Fatalf("disagreement: sparse=(%v,%d) ref=(%v,%d)\ntrace: %v",
				got.OK, got.Nodes, want.OK, want.Nodes, tr)
		}
		if got.OK {
			if err := VerifySequential(adt.Consensus{}, tr, got.Sequential); err != nil {
				t.Fatalf("%v\ntrace: %v", err, tr)
			}
		}
	})
}
