package lin

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckReference decides linearizability under the paper's new definition
// using the original string-keyed, chain-copying search. It is retained as
// a slow executable specification: the optimized Check memoizes on
// incremental digests and mutates its search state in place, and the
// equivalence property tests assert the two return identical verdicts on
// randomized traces (extending experiment E8). New semantic changes land
// here first, then in the optimized checker. Being a specification it
// takes no context and honors only the budget option.
func CheckReference(f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	s := &refSearcher{
		f:      f,
		t:      t,
		budget: check.NewSettings(opts...).BudgetOr(DefaultBudget),
		failed: map[string]bool{},
	}
	ok, err := s.run(0, refChain{f: f}, trace.Multiset{})
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no linearization function exists", Nodes: s.nodes}, nil
	}
	w := Witness{}
	for i, k := range s.assigned {
		w[i] = s.best.hist[:k].Clone()
	}
	return Result{OK: true, Witness: w, Nodes: s.nodes}, nil
}

// refChain is the copying commit-history chain of the reference searcher;
// see the optimized chain in lin.go for the shared invariants.
type refChain struct {
	f      adt.Folder
	hist   trace.History
	states []adt.State
	outs   []trace.Value
	used   []bool
}

func (c refChain) len() int { return len(c.hist) }

func (c refChain) state() adt.State {
	if len(c.states) == 0 {
		return c.f.Empty()
	}
	return c.states[len(c.states)-1]
}

// extend returns a copy of c with input in appended.
func (c refChain) extend(in trace.Value) refChain {
	st := c.state()
	n := refChain{f: c.f}
	n.hist = c.hist.Append(in)
	n.states = append(append([]adt.State{}, c.states...), c.f.Step(st, in))
	if len(c.states) == 0 {
		// states[0] (empty history) was implicit; materialize it.
		n.states = append([]adt.State{c.f.Empty()}, n.states...)
	}
	n.outs = append(append([]trace.Value{}, c.outs...), c.f.Out(st, in))
	n.used = append(append([]bool{}, c.used...), false)
	return n
}

// markUsed returns a copy of c with prefix length k marked assigned.
func (c refChain) markUsed(k int) refChain {
	n := c
	n.used = append([]bool{}, c.used...)
	n.used[k-1] = true
	return n
}

// key returns a canonical string encoding of the chain for memoization.
func (c refChain) key() string {
	var b strings.Builder
	for i, v := range c.hist {
		b.WriteString(v)
		if c.used[i] {
			b.WriteByte('*')
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

type refSearcher struct {
	f      adt.Folder
	t      trace.Trace
	budget int
	nodes  int
	failed map[string]bool
	// assigned maps commit (response) indices to the prefix length they
	// claimed, on the successful path; best is the final chain.
	assigned map[int]int
	best     refChain
}

func (s *refSearcher) spend() error {
	s.nodes++
	if s.nodes > s.budget {
		return ErrBudget
	}
	return nil
}

// run processes the trace from action index i with the given chain and
// multiset of invoked-but-uncommitted inputs.
func (s *refSearcher) run(i int, c refChain, avail trace.Multiset) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	if i == len(s.t) {
		s.best = c
		if s.assigned == nil {
			s.assigned = map[int]int{}
		}
		return true, nil
	}
	key := strconv.Itoa(i) + "|" + c.key() + "|" + avail.Key()
	if s.failed[key] {
		return false, nil
	}
	a := s.t[i]
	var ok bool
	var err error
	switch a.Kind {
	case trace.Inv:
		na := avail.Clone()
		na.Add(a.Input, 1)
		ok, err = s.run(i+1, c, na)
	case trace.Res:
		ok, err = s.commit(i, c, avail, a)
	default:
		return false, fmt.Errorf("lin: action %v does not belong to sig_T", a)
	}
	if err != nil {
		return false, err
	}
	if !ok {
		s.failed[key] = true
		return false, nil
	}
	return true, nil
}

// commit handles a response action; see the optimized searcher for the
// shared case analysis.
func (s *refSearcher) commit(i int, c refChain, avail trace.Multiset, a trace.Action) (bool, error) {
	for k := 1; k <= c.len(); k++ {
		if c.used[k-1] || c.hist[k-1] != a.Input || c.outs[k-1] != a.Output {
			continue
		}
		ok, err := s.run(i+1, c.markUsed(k), avail)
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = k
			return true, nil
		}
	}
	return s.extendAndCommit(i, c, avail, a, map[string]bool{})
}

// extendAndCommit explores extensions of the chain drawn from avail.
func (s *refSearcher) extendAndCommit(i int, c refChain, avail trace.Multiset, a trace.Action, visited map[string]bool) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	vkey := c.key() + "|" + avail.Key()
	if visited[vkey] {
		return false, nil
	}
	visited[vkey] = true

	// Close: append the response's own input.
	if avail.Count(a.Input) > 0 && s.f.Out(c.state(), a.Input) == a.Output {
		nc := c.extend(a.Input)
		nc = nc.markUsed(nc.len())
		na := avail.Clone()
		na.Add(a.Input, -1)
		ok, err := s.run(i+1, nc, na)
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = nc.len()
			return true, nil
		}
	}
	// Continue: append some other available input as an intermediate.
	for in, n := range avail {
		if n <= 0 {
			continue
		}
		na := avail.Clone()
		na.Add(in, -1)
		ok, err := s.extendAndCommit(i, c.extend(in), na, a, visited)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
