package lin

import (
	"context"
	"errors"
	"math/bits"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// This file retains the pre-decision-13 classical engine — the uint64
// placed-bitmask search with the per-node O(n²) real-time eligibility
// rescan — as a build-tag-free executable reference, exactly as
// CheckReference retains the string-keyed new-definition search. The
// property and fuzz tests diff CheckClassical against it on the ≤63-op
// range (verdicts, witness validity and node counts, which match exactly:
// the sparse engine enumerates the same candidates in the same order).

// errClassicalRefCap is the reference engine's representation cap. It is
// internal by design: the production checker no longer caps (the
// deprecated ErrTooManyOps sentinel never fires), and reference callers
// stay within 63 operations.
var errClassicalRefCap = errors.New("lin: classicalRef capped at 63 operations (bitmask representation)")

// CheckClassicalReference exposes the retained bitmask engine to the
// root benchmarks (BENCH_1's classical fast-path parity row), mirroring
// CheckReference's role as an executable specification kept for
// comparison. Traces beyond 63 operations error; production callers use
// the uncapped CheckClassical.
func CheckClassicalReference(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	return classicalRef(ctx, f, t, opts...)
}

// classicalRef decides linearizability* exactly as CheckClassical does,
// on the retained bitmask representation. Traces beyond 63 operations
// return errClassicalRefCap.
func classicalRef(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	set := check.NewSettings(opts...)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	ops := collectOps(t)
	if len(ops) > smallPlacedOps {
		return Result{}, errClassicalRefCap
	}
	s := &classicalRefSearcher{
		ctx:       ctx,
		f:         f,
		ops:       ops,
		budget:    set.BudgetOr(DefaultBudget),
		memoLimit: set.MemoLimit,
		failed:    map[classicalRefKey]struct{}{},
		stateIDs:  map[adt.State]uint32{},
		order:     make([]int, len(ops)),
	}
	ok, err := s.run(0, f.Empty())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no legal sequential reordering exists", Nodes: s.nodes}, nil
	}
	return Result{OK: true, Sequential: append(Linearization{}, s.order...), Nodes: s.nodes}, nil
}

// classicalRefKey is the reference memo key: the exact placed bitmask and
// the interned folded ADT state.
type classicalRefKey struct {
	placed  uint64
	stateID uint32
}

type classicalRefSearcher struct {
	ctx       context.Context
	f         adt.Folder
	ops       []operation
	budget    int
	memoLimit int
	nodes     int
	failed    map[classicalRefKey]struct{}
	stateIDs  map[adt.State]uint32
	// order[k] is the k-th linearized operation on the successful path.
	order []int
}

// stateID interns a folded ADT state to a dense id.
func (s *classicalRefSearcher) stateID(st adt.State) uint32 {
	if id, ok := s.stateIDs[st]; ok {
		return id
	}
	id := uint32(len(s.stateIDs))
	s.stateIDs[st] = id
	return id
}

// run linearizes operations one at a time. placed is the bitmask of
// already-linearized operations and st the folded ADT state they produced.
// An operation j may be linearized next iff every operation k whose
// response precedes j's invocation in real time is already placed
// (Definition 44), and — when j completed in the original trace — its
// output matches the ADT's output at the current state.
func (s *classicalRefSearcher) run(placed uint64, st adt.State) (bool, error) {
	s.nodes++
	if s.nodes > s.budget {
		return false, ErrBudget
	}
	if s.nodes&ctxPollMask == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	if placed == uint64(1)<<len(s.ops)-1 {
		return true, nil
	}
	key := classicalRefKey{placed: placed, stateID: s.stateID(st)}
	if _, hit := s.failed[key]; hit {
		return false, nil
	}
	for j, op := range s.ops {
		if placed&(1<<j) != 0 {
			continue
		}
		// Real-time order: all operations completed before op's
		// invocation must already be placed.
		eligible := true
		for k, other := range s.ops {
			if placed&(1<<k) != 0 || k == j {
				continue
			}
			if other.res >= 0 && other.res < op.inv {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		// ADT agreement for completed operations; pending operations take
		// whatever output the completion assigns, so nothing to check.
		if op.res >= 0 && s.f.Out(st, op.input) != op.output {
			continue
		}
		ok, err := s.run(placed|1<<j, s.f.Step(st, op.input))
		if err != nil {
			return false, err
		}
		if ok {
			s.order[bits.OnesCount64(placed)] = j
			return true, nil
		}
	}
	if s.memoLimit <= 0 || len(s.failed) < s.memoLimit {
		s.failed[key] = struct{}{}
	}
	return false, nil
}
