package lin

import (
	"context"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckAll decides linearizability of each trace independently, sharding
// the batch across a worker pool of check.WithWorkers goroutines
// (GOMAXPROCS when unset). Results are in trace order; each check gets
// its own budget of check.WithBudget nodes. The first error (budget
// exhaustion, malformed action, cancellation of ctx) stops the batch and
// is returned with partial results.
//
// Inside a batch every per-trace search runs the sequential depth-first
// engine — the workers option shards traces here, not searches (use a
// single-trace Check with WithWorkers(n > 1) for intra-trace
// parallelism).
//
// Folder implementations must be safe for concurrent use; every ADT in
// package adt is stateless and qualifies.
func CheckAll(ctx context.Context, f adt.Folder, ts []trace.Trace, opts ...check.Option) ([]Result, error) {
	set := check.NewSettings(opts...)
	perTrace := set
	perTrace.Workers = 1
	return check.Parallel(ctx, ts, set.Workers, func(_ int, t trace.Trace) (Result, error) {
		return checkSettings(ctx, f, t, perTrace)
	})
}

// CheckClassicalAll is CheckAll for the classical checker.
func CheckClassicalAll(ctx context.Context, f adt.Folder, ts []trace.Trace, opts ...check.Option) ([]Result, error) {
	set := check.NewSettings(opts...)
	perTrace := set
	perTrace.Workers = 1
	return check.Parallel(ctx, ts, set.Workers, func(_ int, t trace.Trace) (Result, error) {
		return checkClassicalSettings(ctx, f, t, perTrace)
	})
}
