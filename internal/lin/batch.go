package lin

import (
	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckAll decides linearizability of each trace independently, sharding
// the batch across a worker pool of Options.Workers goroutines (GOMAXPROCS
// when zero). Results are in trace order; each check gets its own budget
// of Options.Budget nodes. The first error (budget exhaustion, malformed
// action) stops the batch and is returned with partial results.
//
// Folder implementations must be safe for concurrent use; every ADT in
// package adt is stateless and qualifies.
func CheckAll(f adt.Folder, ts []trace.Trace, opts Options) ([]Result, error) {
	return check.Parallel(ts, opts.Workers, func(_ int, t trace.Trace) (Result, error) {
		return Check(f, t, opts)
	})
}

// CheckClassicalAll is CheckAll for the classical checker.
func CheckClassicalAll(f adt.Folder, ts []trace.Trace, opts Options) ([]Result, error) {
	return check.Parallel(ts, opts.Workers, func(_ int, t trace.Trace) (Result, error) {
		return CheckClassical(f, t, opts)
	})
}
