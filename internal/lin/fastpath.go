package lin

import (
	"context"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// This file is the dispatch layer of the ADT-specialized fast-path
// checkers (DESIGN.md, decision 15): linear/near-linear linearizability
// checkers for the register, queue and consensus folders, obtained by
// reducing the Lin check inside a syntactic trace fragment to a
// per-ADT reachability condition (Bouajjani–Emmi–Enea–Hamza; Gibbons–
// Korach for the register). The exact search engines stay authoritative:
// every fast-path entry point falls back to them transparently the
// moment a trace leaves the specialized fragment, and the diffcheck
// harness plus FuzzFastpathVsExact keep the two in verdict agreement.
//
// Fragment, per folder (anything else falls back to exact):
//
//   - register — grammar-valid inputs whose full input strings are
//     pairwise distinct and whose untagged written values are pairwise
//     distinct. SMR per-key histories satisfy this by construction
//     (writes encode the command value, reads carry unique tags).
//   - consensus — grammar-valid proposals with pairwise-distinct input
//     strings (equal untagged proposal values are fine).
//   - queue — complete traces (no pending operations) with
//     grammar-valid, pairwise-distinct inputs, pairwise-distinct
//     untagged enqueue values and no empty-dequeue outputs; one-shot
//     only (CheckFast), no streaming core.
//   - mutex — grammar-valid inputs with pairwise-distinct input strings
//     whose outputs are all "ok:" (an "err:*" output is explainable by
//     the ADT, so it falls back rather than rejecting).
//   - stack — grammar-valid inputs with pairwise-distinct input
//     strings, pairwise-distinct untagged push values and no
//     empty-pop outputs.
//
// Inside the fragment the cores decide the verdict exactly; semantic
// violations (an output no linearization could explain) are final
// NotLinearizable verdicts, never fallbacks. The mutex and stack cores
// additionally exit the fragment — instead of rejecting — when their
// greedy simulations get stuck without a certain violation, so their
// rejects never rest on a completeness argument. All cores assemble
// Lin witnesses that pass VerifyWitness; the one-shot queue core's
// witness is capped at fastQueueWitnessCap dequeued values (beyond it
// the positive Result carries an empty Witness, like the SLin breadth
// engine).

// FastStatus is the per-action outcome of a streaming FastChecker.
type FastStatus uint8

const (
	// FastOK means the action stayed inside the fragment and the fed
	// trace remains linearizable.
	FastOK FastStatus = iota
	// FastReject means the fed trace is not linearizable; the verdict is
	// final (the exact engines agree, so no fallback is needed).
	FastReject
	// FastExit means the action left the specialized fragment; the
	// caller must fall back to an exact engine, replaying the whole
	// trace fed so far.
	FastExit
)

// FastChecker is a streaming ADT-specialized linearizability core. The
// caller owns well-formedness: Inv and Res must describe a per-client
// alternating Inv/Res stream, with idx the action's trace index and
// invIdx the trace index of the response's matching invocation. After
// FastReject or FastExit the core must not be fed further.
type FastChecker interface {
	Inv(in trace.Value, idx int) FastStatus
	Res(in, out trace.Value, invIdx, idx int) FastStatus
	// Witness assembles the linearization function of the (linearizable)
	// trace fed so far, or nil when the core does not produce witnesses.
	Witness() Witness
}

// HasFastpath reports whether CheckFast has a specialized checker for
// folder f. The streaming Session fast path additionally excludes the
// queue (its reduction needs the complete trace).
func HasFastpath(f adt.Folder) bool {
	switch f.(type) {
	case adt.Register, adt.Queue, adt.Consensus, adt.Mutex, adt.Stack:
		return true
	}
	return false
}

// NewFastChecker returns the streaming specialized core for folder f,
// or nil when f has none (the queue fast path is one-shot only).
func NewFastChecker(f adt.Folder) FastChecker {
	switch f.(type) {
	case adt.Register:
		return newFastRegister()
	case adt.Consensus:
		return newFastConsensus()
	case adt.Mutex:
		return newFastMutex()
	case adt.Stack:
		return newFastStack()
	}
	return nil
}

// CheckFast is Check with fast-path dispatch: when folder f has a
// specialized checker and the trace stays inside its fragment, the
// verdict is decided in near-linear time; otherwise — unsupported
// folder, fragment exit, or check.WithExact — the call falls through to
// the exact Check engines. Verdicts and reasons agree with Check
// everywhere; Result.Nodes counts fed actions on the fast path (no
// budget is spent, so the fast path never returns ErrBudget), and the
// queue fast path reports positive verdicts without a witness.
func CheckFast(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	set := check.NewSettings(opts...)
	if !set.Exact {
		if r, ok, err := fastCheckSettings(ctx, f, t, set); ok || err != nil {
			return r, err
		}
	}
	return checkSettings(ctx, f, t, set)
}

// fastCheckSettings runs the one-shot fast path. ok reports whether the
// trace was decided (false means fall back to exact); a non-nil error
// (context cancellation) is terminal either way.
func fastCheckSettings(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, bool, error) {
	if _, isQueue := f.(adt.Queue); isQueue {
		return fastQueueCheck(ctx, t, set)
	}
	core := NewFastChecker(f)
	if core == nil {
		return Result{}, false, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, true, err
	}
	pending := map[trace.ClientID]fastPending{}
	for idx, a := range t {
		if idx&ctxPollMask == ctxPollMask {
			if err := ctx.Err(); err != nil {
				return Result{Nodes: idx}, true, err
			}
		}
		var res FastStatus
		switch a.Kind {
		case trace.Inv:
			if pending[a.Client].pending {
				// Ill-formedness is final and folder-independent; no fallback.
				return Result{OK: false, Reason: "trace is not well-formed", Nodes: idx + 1}, true, nil
			}
			if res = core.Inv(a.Input, idx); res == FastOK {
				pending[a.Client] = fastPending{pending: true, input: a.Input, idx: idx}
			}
		case trace.Res:
			st := pending[a.Client]
			if !st.pending || st.input != a.Input {
				return Result{OK: false, Reason: "trace is not well-formed", Nodes: idx + 1}, true, nil
			}
			if res = core.Res(a.Input, a.Output, st.idx, idx); res == FastOK {
				pending[a.Client] = fastPending{}
			}
		default:
			return Result{OK: false, Reason: "trace is not well-formed", Nodes: idx + 1}, true, nil
		}
		switch res {
		case FastReject:
			return Result{OK: false, Reason: "no linearization function exists", Nodes: idx + 1}, true, nil
		case FastExit:
			return Result{}, false, nil
		}
	}
	r := Result{OK: true, Nodes: len(t)}
	if set.Witness {
		r.Witness = core.Witness()
	}
	return r, true, nil
}

// fastPending tracks one client's pending invocation for the fast
// path's well-formedness bookkeeping (the streaming twin of Check's
// WellFormed precheck, annotated with invocation indices for the
// cores).
type fastPending struct {
	pending bool
	input   trace.Value
	idx     int
}

// maxTree is an append-only segment tree over int values supporting
// point increase-updates and range-maximum queries, used by the
// register core to query the maximum block start among closed blocks
// while excluding one position. Capacity doubles by rebuilding (ops
// stay O(log n) amortized); absent positions report -1.
type maxTree struct {
	size int   // leaves in use
	cap_ int   // leaf capacity, power of two (0 until first append)
	node []int // 1-based segment tree over cap_ leaves, len 2*cap_
}

// Append adds value v at position t.size.
func (t *maxTree) Append(v int) {
	if t.size == t.cap_ {
		ncap := t.cap_ * 2
		if ncap == 0 {
			ncap = 1
		}
		old := t.node
		t.node = make([]int, 2*ncap)
		for i := range t.node {
			t.node[i] = -1
		}
		for i := 0; i < t.size; i++ {
			t.node[ncap+i] = old[t.cap_+i]
		}
		t.cap_ = ncap
		for i := ncap - 1; i >= 1; i-- {
			t.node[i] = maxInt(t.node[2*i], t.node[2*i+1])
		}
	}
	t.Update(t.size, v)
	t.size++
}

// Update raises position pos to value v (values only ever grow).
func (t *maxTree) Update(pos, v int) {
	i := t.cap_ + pos
	if t.node[i] >= v {
		return
	}
	t.node[i] = v
	for i > 1 {
		i /= 2
		m := maxInt(t.node[2*i], t.node[2*i+1])
		if t.node[i] == m {
			break
		}
		t.node[i] = m
	}
}

// Max returns the maximum value over positions [lo, hi), or -1 when the
// range is empty.
func (t *maxTree) Max(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.size {
		hi = t.size
	}
	res := -1
	l, r := t.cap_+lo, t.cap_+hi
	for l < r {
		if l&1 == 1 {
			res = maxInt(res, t.node[l])
			l++
		}
		if r&1 == 1 {
			r--
			res = maxInt(res, t.node[r])
		}
		l /= 2
		r /= 2
	}
	return res
}

// MaxExcluding returns the maximum over positions [0, hi) skipping pos.
func (t *maxTree) MaxExcluding(hi, pos int) int {
	if pos < 0 || pos >= hi {
		return t.Max(0, hi)
	}
	return maxInt(t.Max(0, pos), t.Max(pos+1, hi))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
