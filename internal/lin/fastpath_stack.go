package lin

import (
	"strings"

	"repro/internal/adt"
	"repro/internal/trace"
)

// fastStack is the streaming stack fast path (DESIGN.md, decision 15):
// a lazy greedy LIFO simulation over the distinct-pushes fragment —
// grammar-valid inputs with pairwise-distinct input strings and
// pairwise-distinct untagged push values, and no empty pops (a "v:⊥"
// pop output exits to the exact engines, like the queue core).
//
// The simulated stack holds linearized-but-unpopped values; operations
// linearize as late as possible. A push linearizes at its own response
// (or earlier, as a helper, when a pop returns its value first). A pop
// response returning x forces x to the top: values above x are popped
// by helper pops — the oldest-invoked unassigned pending pops, each
// assigned the value it is expected to return — and a still-pending
// push of x is linearized first if needed. Accepts are certain (the
// simulation is a legal stack execution with every point inside its
// operation's interval; Witness replays it) and so are the value-based
// rejects: a pop output no invoked push has supplied, a second pop of
// a distinct value, or a push answered by anything but "ok:" defeats
// every linearization. Everything else the greedy cannot place — no
// pending pop available to clear the stack above x, or an assigned
// helper whose real response later disagrees with its expected value —
// exits the fragment, so rejects never depend on the greedy's
// completeness; FuzzFastpathVsExact and the diffcheck boundary tests
// keep the three outcomes honest against the exact search.
type fastStack struct {
	seen   map[trace.Value]struct{}
	ops    map[int]*stackOp     // by invocation trace index
	vals   map[string]*stackVal // by untagged push value
	pool   []int                // unassigned pending pop invIdxs, oldest first
	poolLo int
	stack  []*stackVal // simulated stack, top last
	chain  trace.History
	marks  []resMark
}

type stackOp struct {
	push     bool
	in       trace.Value
	val      *stackVal // the pushed value (pushes only)
	assigned bool
	done     bool
	pos      int    // claimed chain prefix once linearized
	expected string // assigned pops: the value the helper must return
}

type stackVal struct {
	val    string
	pushOp *stackOp
	state  uint8 // 0 pending push, 1 on the simulated stack, 2 popped
}

const (
	valPending = iota
	valOnStack
	valPopped
)

func newFastStack() *fastStack {
	return &fastStack{
		seen: map[trace.Value]struct{}{},
		ops:  map[int]*stackOp{},
		vals: map[string]*stackVal{},
	}
}

// Inv implements FastChecker.
func (s *fastStack) Inv(in trace.Value, idx int) FastStatus {
	if _, dup := s.seen[in]; dup {
		return FastExit
	}
	s.seen[in] = struct{}{}
	op, arg, ok := strings.Cut(string(adt.Untag(in)), ":")
	o := &stackOp{in: in}
	switch {
	case !ok:
		return FastExit
	case op == "push":
		if arg == "" || arg == string(adt.Bottom) || strings.ContainsRune(arg, '\x00') {
			return FastExit
		}
		if _, dup := s.vals[arg]; dup {
			return FastExit // duplicate push value
		}
		o.push = true
		o.val = &stackVal{val: arg, pushOp: o}
		s.vals[arg] = o.val
	case op == "pop" && arg == "":
		s.pool = append(s.pool, idx)
	default:
		return FastExit
	}
	s.ops[idx] = o
	return FastOK
}

// Res implements FastChecker.
func (s *fastStack) Res(in, out trace.Value, invIdx, idx int) FastStatus {
	o := s.ops[invIdx]
	o.done = true
	if o.push {
		if out != adt.WriteOutput() {
			return FastReject // pushes can only ever output "ok:"
		}
		if !o.assigned {
			s.linPush(o)
		}
		s.marks = append(s.marks, resMark{res: idx, k: o.pos})
		return FastOK
	}
	vop, varg, ok := strings.Cut(string(out), ":")
	if !ok || vop != "v" {
		return FastReject // pops can only ever output "v:x"
	}
	if varg == string(adt.Bottom) {
		return FastExit // empty pop: outside the fragment
	}
	if o.assigned {
		if varg != o.expected {
			return FastExit // the helper guess was wrong; exact engines decide
		}
		s.marks = append(s.marks, resMark{res: idx, k: o.pos})
		return FastOK
	}
	v := s.vals[varg]
	if v == nil {
		return FastReject // value never pushed by any invocation so far
	}
	if v.state == valPopped {
		return FastReject // distinct values pop at most once
	}
	if v.state == valPending {
		s.linPush(v.pushOp) // the push is in flight: linearize it now
	}
	// Clear the simulated stack above v with helper pops, oldest first.
	for s.stack[len(s.stack)-1] != v {
		h := s.takeOldestPop()
		if h == nil {
			return FastExit // nothing pending can uncover v
		}
		top := s.stack[len(s.stack)-1]
		h.assigned, h.expected = true, top.val
		s.chain = append(s.chain, h.in)
		h.pos = len(s.chain)
		top.state = valPopped
		s.stack = s.stack[:len(s.stack)-1]
	}
	s.chain = append(s.chain, o.in)
	o.pos = len(s.chain)
	v.state = valPopped
	s.stack = s.stack[:len(s.stack)-1]
	s.marks = append(s.marks, resMark{res: idx, k: o.pos})
	return FastOK
}

// linPush linearizes push o: its value joins the simulated stack top.
func (s *fastStack) linPush(o *stackOp) {
	s.chain = append(s.chain, o.in)
	o.pos = len(s.chain)
	o.assigned = true
	o.val.state = valOnStack
	s.stack = append(s.stack, o.val)
}

// takeOldestPop pops the oldest unassigned still-pending pop, or nil.
func (s *fastStack) takeOldestPop() *stackOp {
	for s.poolLo < len(s.pool) {
		o := s.ops[s.pool[s.poolLo]]
		s.poolLo++
		if !o.assigned && !o.done {
			return o
		}
	}
	return nil
}

// Witness implements FastChecker.
func (s *fastStack) Witness() Witness {
	w := Witness{}
	for _, mk := range s.marks {
		w[mk.res] = s.chain[:mk.k].Clone()
	}
	return w
}
