package lin_test

// The E8-style equivalence suite of this package (equivalence_test.go)
// cross-checks the new and classical definitions; this file extends it
// with the engine-variant differential harness (checker API v2 + the
// decision-12 reducer): depth vs frontier × reduced vs unreduced must
// agree on the same randomized workloads, with witnesses verified. The
// harness lives in internal/check/diffcheck, so these tests run in the
// external test package.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check/diffcheck"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestE8StyleEngineMatrix runs the differential engine matrix on the E8
// workload shapes (unique tags, clean/corrupted mix) across four ADTs —
// the same sweep E13 benchmarks, here asserting agreement rather than
// measuring node counts.
func TestE8StyleEngineMatrix(t *testing.T) {
	cases := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}{
		{"consensus", adt.Consensus{}, []trace.Value{
			adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c"),
		}},
		{"register", adt.Register{}, []trace.Value{
			adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput(),
		}},
		{"counter", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{"queue", adt.Queue{}, []trace.Value{
			adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput(),
		}},
	}
	iters := 120
	if testing.Short() {
		iters = 30
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for i := 0; i < iters; i++ {
				opts := workload.TraceOpts{
					Clients:     2 + r.Intn(2),
					Ops:         3 + r.Intn(4),
					Inputs:      tc.inputs,
					PendingProb: 0.2,
					UniqueTags:  true,
				}
				if i%2 == 1 {
					opts.CorruptProb = 0.5
				}
				tr := workload.Random(tc.f, r, opts)
				if err := diffcheck.Lin(ctx, tc.f, tr); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRepeatedEventsEngineMatrix pins the engine matrix on the repeated-
// events regime (no occurrence tags), where the extension branch sets
// carry genuinely identical inputs — the multiplicity > 1 corner of the
// reducer's availability handling.
func TestRepeatedEventsEngineMatrix(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(77))
	inputs := []trace.Value{adt.IncInput(), adt.GetInput()}
	iters := 100
	if testing.Short() {
		iters = 25
	}
	for i := 0; i < iters; i++ {
		opts := workload.TraceOpts{Clients: 3, Ops: 4 + r.Intn(3), Inputs: inputs}
		if i%2 == 1 {
			opts.CorruptProb = 0.4
		}
		tr := workload.Random(adt.Counter{}, r, opts)
		if err := diffcheck.Lin(ctx, adt.Counter{}, tr); err != nil {
			t.Fatal(err)
		}
	}
}
