package lin

import (
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/trace"
)

// fastRegister is the streaming register fast path (DESIGN.md, decision
// 15): a Gibbons–Korach-style interval analysis specialized to the
// distinct-writes fragment. Each written value v induces a block — the
// write of v plus every read returning v — summarized by two indices:
//
//	closedAt(B) — the trace index of the block's first response, fixed
//	              when the block "closes";
//	maxStart(B) — the maximum invocation index over the block's
//	              responded members, growing as reads join.
//
// In any linearization all members of a block are consecutive (reads
// return v only between the write of v and the next write), so blocks
// are totally ordered; an unordered block pair {A, B} is unserializable
// iff closedAt(A) < maxStart(B) and closedAt(B) < maxStart(A) — each
// must finish an operation before the other starts one, so neither can
// be placed entirely first. With pairwise-distinct inputs, one such
// pair already defeats every linearization (Validity pins each read to
// its unique write), so the trace is linearizable iff no pair violates.
//
// Only two event kinds can create a violating pair, which keeps the
// check near-linear: a read joining an already-closed block B with
// invocation index s violates iff some other closed block A has
// closedAt(A) < s and maxStart(A) > closedAt(B) — a range-maximum query
// over the closed-block array (closedAt-ascending by construction)
// through maxTree, excluding B itself; and a ⊥-read with invocation
// index s violates iff any block closed before s (⊥-reads must precede
// every write). Block closes never violate (the closing index exceeds
// every recorded start), and writes create their block unconditionally.
//
// Witness: concatenate the accepted ⊥-reads (response order), then the
// closed blocks sorted by key(B) = max(closedAt(B), maxStart(B))
// ascending, each block as [write, reads in response order]; every
// response claims the prefix of this history ending at its own input.
// If key-earlier A had maxStart(A) > closedAt(B) for some later B, the
// non-violation of {A, B} would force maxStart(B) < closedAt(A) and
// hence key(A) > key(B) — contradiction; so every element of an
// earlier block is invoked before every response of a later one, which
// is exactly Validity.
type fastRegister struct {
	seen     map[trace.Value]struct{} // every invocation input (distinctness)
	blocks   map[string]*regBlock     // by untagged written value
	closed   []*regBlock              // close order = closedAt ascending
	tree     maxTree                  // maxStart per closed position
	botReads []regMember              // accepted ⊥-reads, response order
}

type regBlock struct {
	val      string      // untagged written value
	wIn      trace.Value // the write's full input
	wRes     int         // write response index, -1 while pending
	maxStart int
	closedAt int // -1 while open
	pos      int // position in closed array, -1 while open
	reads    []regMember
}

type regMember struct {
	in  trace.Value
	res int
}

func newFastRegister() *fastRegister {
	return &fastRegister{
		seen:   map[trace.Value]struct{}{},
		blocks: map[string]*regBlock{},
	}
}

// regParse splits an untagged register input into op and argument.
func regParse(in trace.Value) (op, arg string, ok bool) {
	op, arg, ok = strings.Cut(string(adt.Untag(in)), ":")
	return op, arg, ok
}

// Inv implements FastChecker.
func (r *fastRegister) Inv(in trace.Value, idx int) FastStatus {
	if _, dup := r.seen[in]; dup {
		return FastExit
	}
	r.seen[in] = struct{}{}
	op, arg, ok := regParse(in)
	switch {
	case !ok:
		return FastExit
	case op == "w":
		if arg == "" || arg == string(adt.Bottom) {
			return FastExit // grammar-invalid write; exact semantics differ
		}
		if _, dup := r.blocks[arg]; dup {
			return FastExit // duplicate written value
		}
		r.blocks[arg] = &regBlock{val: arg, wIn: in, wRes: -1, maxStart: idx, closedAt: -1, pos: -1}
		return FastOK
	case op == "r" && arg == "":
		return FastOK // reads act at their response
	}
	return FastExit
}

// Res implements FastChecker.
func (r *fastRegister) Res(in, out trace.Value, invIdx, idx int) FastStatus {
	op, arg, _ := regParse(in) // Inv already validated the shape
	if op == "w" {
		if out != adt.WriteOutput() {
			return FastReject
		}
		b := r.blocks[arg]
		if b.closedAt < 0 {
			r.close(b, idx)
		}
		b.wRes = idx
		return FastOK
	}
	vop, varg, ok := strings.Cut(string(out), ":")
	if !ok || vop != "v" {
		return FastReject // reads can only ever output "v:x"
	}
	if varg == string(adt.Bottom) {
		// A ⊥-read must precede every write: it violates iff any block
		// closed before it was invoked.
		if len(r.closed) > 0 && r.closed[0].closedAt < invIdx {
			return FastReject
		}
		r.botReads = append(r.botReads, regMember{in: in, res: idx})
		return FastOK
	}
	b := r.blocks[varg]
	if b == nil {
		return FastReject // value never written by any invocation so far
	}
	if b.closedAt < 0 {
		if invIdx > b.maxStart {
			b.maxStart = invIdx
		}
		r.close(b, idx)
		b.reads = append(b.reads, regMember{in: in, res: idx})
		return FastOK
	}
	// Joining a closed block: query the other blocks closed before this
	// read was invoked for a start after b's close.
	cnt := sort.Search(len(r.closed), func(i int) bool {
		return r.closed[i].closedAt >= invIdx
	})
	if r.tree.MaxExcluding(cnt, b.pos) > b.closedAt {
		return FastReject
	}
	if invIdx > b.maxStart {
		b.maxStart = invIdx
		r.tree.Update(b.pos, invIdx)
	}
	b.reads = append(b.reads, regMember{in: in, res: idx})
	return FastOK
}

// close records block b's first response at index idx.
func (r *fastRegister) close(b *regBlock, idx int) {
	b.closedAt = idx
	b.pos = len(r.closed)
	r.closed = append(r.closed, b)
	r.tree.Append(b.maxStart)
}

// Witness implements FastChecker (see the type comment for the
// construction and its correctness argument).
func (r *fastRegister) Witness() Witness {
	order := append([]*regBlock(nil), r.closed...)
	sort.Slice(order, func(i, j int) bool {
		return maxInt(order[i].closedAt, order[i].maxStart) <
			maxInt(order[j].closedAt, order[j].maxStart)
	})
	w := Witness{}
	var hist trace.History
	for _, m := range r.botReads {
		hist = append(hist, m.in)
		w[m.res] = hist.Clone()
	}
	for _, b := range order {
		hist = append(hist, b.wIn)
		if b.wRes >= 0 {
			w[b.wRes] = hist.Clone()
		}
		for _, m := range b.reads {
			hist = append(hist, m.in)
			w[m.res] = hist.Clone()
		}
	}
	return w
}
