// Package lin decides linearizability of traces.
//
// It implements both definitions studied in the paper:
//
//   - Check implements the paper's new definition (§4, Definitions 5–15):
//     a trace is linearizable iff it is well-formed and admits a
//     linearization function mapping response indices to commit histories
//     that explain the outputs, use only previously invoked inputs
//     (Validity), and are totally ordered by strict prefix (Commit-Order).
//
//   - CheckClassical implements the classical Herlihy–Wing definition as
//     formalized in Appendix A (Definitions 37–46): a trace is
//     linearizable* iff some completion can be reordered into a sequential
//     trace that agrees with the ADT and preserves the order of
//     non-overlapping operations.
//
// Theorem 1/4 states the two definitions coincide; experiment E8 validates
// that this package's two checkers agree on randomly generated traces.
//
// Both checkers are exact decision procedures (worst-case exponential, as
// the problem is NP-hard) with memoization on folded ADT states. A step
// budget bounds pathological searches; exceeding it yields ErrBudget
// rather than a wrong verdict.
package lin

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/trace"
)

// ErrBudget is returned when a check exceeds its search budget; the
// trace's status is then unknown rather than decided.
var ErrBudget = errors.New("lin: search budget exhausted")

// DefaultBudget bounds the number of search nodes explored per check.
const DefaultBudget = 2_000_000

// Options configures a check.
type Options struct {
	// Budget bounds search nodes; 0 means DefaultBudget.
	Budget int
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return DefaultBudget
	}
	return o.Budget
}

// Witness is a linearization function restricted to commit indices: for
// each response index of the trace it gives the commit history g(i)
// (Definition 8).
type Witness map[int]trace.History

// Result reports the outcome of a linearizability check.
type Result struct {
	// OK is true when the trace is linearizable.
	OK bool
	// Reason documents a negative verdict.
	Reason string
	// Witness holds a linearization function when OK (new definition
	// checker only).
	Witness Witness
	// Sequential holds the sequential-reordering witness when OK
	// (classical checker only).
	Sequential Linearization
}

// Check decides linearizability of t with respect to f under the paper's
// new definition. The returned error is non-nil only for budget
// exhaustion or malformed inputs, never for a (correct) negative verdict.
func Check(f adt.Folder, t trace.Trace, opts Options) (Result, error) {
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	s := &searcher{
		f:      f,
		t:      t,
		budget: opts.budget(),
		failed: map[string]bool{},
	}
	ok, err := s.run(0, chain{f: f}, trace.Multiset{})
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no linearization function exists"}, nil
	}
	w := Witness{}
	for i, k := range s.assigned {
		w[i] = s.best.hist[:k].Clone()
	}
	return Result{OK: true, Witness: w}, nil
}

// chain is the current commit-history chain: Commit-Order (Definition 12)
// totally orders commit histories by strict prefix, so all of them are
// prefixes of a single maximal history. The chain tracks that maximal
// history, the ADT state and output at every prefix length, and which
// lengths are already assigned to a commit index (each response must get a
// distinct prefix, but not necessarily in trace order).
type chain struct {
	f    adt.Folder
	hist trace.History
	// states[k] is the folded state of hist[:k]; len(states) == len(hist)+1
	// once initialized (states[0] is the empty state).
	states []adt.State
	// outs[k-1] is f's output for the k-th input of hist applied at
	// states[k-1], i.e. the output of the operation committing hist[:k].
	outs []trace.Value
	// used marks prefix lengths already assigned to a commit index.
	used []bool
}

func (c chain) len() int { return len(c.hist) }

func (c chain) state() adt.State {
	if len(c.states) == 0 {
		return c.f.Empty()
	}
	return c.states[len(c.states)-1]
}

// extend returns a copy of c with input in appended.
func (c chain) extend(in trace.Value) chain {
	st := c.state()
	n := chain{f: c.f}
	n.hist = c.hist.Append(in)
	n.states = append(append([]adt.State{}, c.states...), c.f.Step(st, in))
	if len(c.states) == 0 {
		// states[0] (empty history) was implicit; materialize it.
		n.states = append([]adt.State{c.f.Empty()}, n.states...)
	}
	n.outs = append(append([]trace.Value{}, c.outs...), c.f.Out(st, in))
	n.used = append(append([]bool{}, c.used...), false)
	return n
}

// markUsed returns a copy of c with prefix length k marked assigned.
func (c chain) markUsed(k int) chain {
	n := c
	n.used = append([]bool{}, c.used...)
	n.used[k-1] = true
	return n
}

// key returns a canonical encoding of the chain for memoization.
func (c chain) key() string {
	var b strings.Builder
	for i, v := range c.hist {
		b.WriteString(v)
		if c.used[i] {
			b.WriteByte('*')
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

type searcher struct {
	f      adt.Folder
	t      trace.Trace
	budget int
	failed map[string]bool
	// assigned maps commit (response) indices to the prefix length they
	// claimed, on the successful path; best is the final chain.
	assigned map[int]int
	best     chain
}

func (s *searcher) spend() error {
	s.budget--
	if s.budget < 0 {
		return ErrBudget
	}
	return nil
}

// run processes the trace from action index i with the given chain and
// multiset of invoked-but-uncommitted inputs.
func (s *searcher) run(i int, c chain, avail trace.Multiset) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	if i == len(s.t) {
		s.best = c
		if s.assigned == nil {
			s.assigned = map[int]int{}
		}
		return true, nil
	}
	key := strconv.Itoa(i) + "|" + c.key() + "|" + avail.Key()
	if s.failed[key] {
		return false, nil
	}
	a := s.t[i]
	var ok bool
	var err error
	switch a.Kind {
	case trace.Inv:
		na := avail.Clone()
		na.Add(a.Input, 1)
		ok, err = s.run(i+1, c, na)
	case trace.Res:
		ok, err = s.commit(i, c, avail, a)
	default:
		return false, fmt.Errorf("lin: action %v does not belong to sig_T", a)
	}
	if err != nil {
		return false, err
	}
	if !ok {
		s.failed[key] = true
		return false, nil
	}
	return true, nil
}

// commit handles a response action: the commit history g(i) must be a
// prefix of the chain (possibly created by extending it), ending with the
// response's input and explaining its output, at a prefix length no other
// commit has claimed.
func (s *searcher) commit(i int, c chain, avail trace.Multiset, a trace.Action) (bool, error) {
	// Option 1: claim an existing unused prefix length. Elements already
	// in the chain were drawn from inputs invoked before the action that
	// appended them, hence before i, so Validity holds automatically.
	for k := 1; k <= c.len(); k++ {
		if c.used[k-1] || c.hist[k-1] != a.Input || c.outs[k-1] != a.Output {
			continue
		}
		ok, err := s.run(i+1, c.markUsed(k), avail)
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = k
			return true, nil
		}
	}
	// Option 2: extend the chain with fresh inputs from avail, the last
	// being the response's own input. Intermediate appended elements
	// create new (unused) prefix lengths that later commits may claim.
	return s.extendAndCommit(i, c, avail, a, map[string]bool{})
}

// extendAndCommit explores extensions of the chain drawn from avail. At
// every step it may close the extension by appending the response's input
// (if the output matches) or append any other available input and
// continue. visited prunes permutations reaching identical (chain, avail)
// configurations within this response.
func (s *searcher) extendAndCommit(i int, c chain, avail trace.Multiset, a trace.Action, visited map[string]bool) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	vkey := c.key() + "|" + avail.Key()
	if visited[vkey] {
		return false, nil
	}
	visited[vkey] = true

	// Close: append the response's own input.
	if avail.Count(a.Input) > 0 && s.f.Out(c.state(), a.Input) == a.Output {
		nc := c.extend(a.Input)
		nc = nc.markUsed(nc.len())
		na := avail.Clone()
		na.Add(a.Input, -1)
		ok, err := s.run(i+1, nc, na)
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = nc.len()
			return true, nil
		}
	}
	// Continue: append some other available input as an intermediate.
	for in, n := range avail {
		if n <= 0 {
			continue
		}
		na := avail.Clone()
		na.Add(in, -1)
		ok, err := s.extendAndCommit(i, c.extend(in), na, a, visited)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
