// Package lin decides linearizability of traces.
//
// It implements both definitions studied in the paper:
//
//   - Check implements the paper's new definition (§4, Definitions 5–15):
//     a trace is linearizable iff it is well-formed and admits a
//     linearization function mapping response indices to commit histories
//     that explain the outputs, use only previously invoked inputs
//     (Validity), and are totally ordered by strict prefix (Commit-Order).
//
//   - CheckClassical implements the classical Herlihy–Wing definition as
//     formalized in Appendix A (Definitions 37–46): a trace is
//     linearizable* iff some completion can be reordered into a sequential
//     trace that agrees with the ADT and preserves the order of
//     non-overlapping operations. It accepts traces of any length: placed
//     sets spill from a single-word bitmask to a sparse word-array
//     representation past 63 operations (DESIGN.md, decision 13).
//
// Theorem 1/4 states the two definitions coincide; experiment E8 validates
// that this package's two checkers agree on randomly generated traces.
//
// Both checkers are exact decision procedures (worst-case exponential, as
// the problem is NP-hard) with memoization on folded ADT states. A step
// budget bounds pathological searches; exceeding it yields ErrBudget
// rather than a wrong verdict.
//
// Performance. The searches memoize on incrementally-maintained 128-bit
// digests of interned-symbol search states (DESIGN.md, decision 7) and
// mutate one chain/multiset in place with undo on backtrack, so the hot
// loop performs no per-node allocation or re-serialization. CheckReference
// retains the original string-keyed search as an executable specification;
// property tests assert the two agree.
package lin

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// ErrBudget is returned when a check exceeds its search budget; the
// trace's status is then unknown rather than decided.
var ErrBudget = errors.New("lin: search budget exhausted")

// ErrMemo is returned by the breadth (frontier) engine — Sessions and
// checks with WithWorkers(n > 1) — when a frontier exceeds the configured
// WithMemoLimit; the trace's status is then unknown. The depth-first
// engine never returns it (beyond the limit it stops inserting memo
// entries instead, trading time for bounded memory).
var ErrMemo = errors.New("lin: memo limit exceeded")

// ErrTooManyOps was returned by CheckClassical for traces with more than
// 63 operations, when the classical search represented the placed-
// operation set as a uint64 bitmask.
//
// Deprecated: the classical checker is uncapped since the sparse
// placed-set representation (DESIGN.md, decision 13) — placed sets spill
// to a word-array bitset with a digest-keyed memo beyond 63 operations —
// so this sentinel no longer fires from any checker entry point; the
// deprecation audit pins that. It survives only so existing errors.Is
// guards keep compiling (they now never match).
var ErrTooManyOps = errors.New("lin: classical checker capped at 63 operations (bitmask representation)")

// DefaultBudget bounds the number of search nodes explored per check.
const DefaultBudget = 2_000_000

// Witness is a linearization function restricted to commit indices: for
// each response index of the trace it gives the commit history g(i)
// (Definition 8).
type Witness map[int]trace.History

// Result reports the outcome of a linearizability check.
type Result struct {
	// OK is true when the trace is linearizable.
	OK bool
	// Reason documents a negative verdict.
	Reason string
	// Witness holds a linearization function when OK (new definition
	// checker only).
	Witness Witness
	// Sequential holds the sequential-reordering witness when OK
	// (classical checker only).
	Sequential Linearization
	// Nodes is the number of search nodes the check spent (always at most
	// the budget; comparable across Check, CheckClassical and slin.Check).
	Nodes int
	// Pruned is the number of extension branches the sleep-set
	// partial-order reduction skipped (check.WithPOR, on by default;
	// DESIGN.md decision 12). Always 0 with the reduction off, so
	// Nodes+Pruned accounting makes the reduction benchmarkable: every
	// pruned branch is a subtree the unreduced search would have entered.
	Pruned int
}

// Check decides linearizability of t with respect to f under the paper's
// new definition. The check is context-aware: cancellation of ctx aborts
// the search with ctx's error. The returned error is non-nil only for
// budget/memo exhaustion, cancellation or malformed inputs, never for a
// (correct) negative verdict.
//
// With check.WithWorkers(n) for n > 1 the check runs on the breadth
// (frontier) engine — the same engine Sessions use — expanding each
// response's frontier across n workers over a sharded memo set, so a
// single pathological trace uses all cores (DESIGN.md, decision 11). The
// default is the sequential depth-first search.
func Check(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	return checkSettings(ctx, f, t, check.NewSettings(opts...))
}

func checkSettings(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if !t.WellFormed() {
		return Result{OK: false, Reason: "trace is not well-formed"}, nil
	}
	if set.Workers > 1 {
		return checkStreaming(ctx, f, t, set)
	}
	s := newSearcher(ctx, f, t, set)
	ok, err := s.run(0)
	if err != nil {
		return Result{Nodes: s.nodes, Pruned: s.pruned}, err
	}
	if !ok {
		return Result{OK: false, Reason: "no linearization function exists", Nodes: s.nodes, Pruned: s.pruned}, nil
	}
	r := Result{OK: true, Nodes: s.nodes, Pruned: s.pruned}
	if set.Witness {
		w := Witness{}
		for i, k := range s.assigned {
			w[i] = s.best[:k].Clone()
		}
		r.Witness = w
	}
	return r, nil
}

// chain is the current commit-history chain: Commit-Order (Definition 12)
// totally orders commit histories by strict prefix, so all of them are
// prefixes of a single maximal history. The chain tracks that maximal
// history, the ADT state and output at every prefix length, and which
// lengths are already assigned to a commit index (each response must get a
// distinct prefix, but not necessarily in trace order).
//
// The chain is mutated in place along the search path (push/pop,
// setUsed/clearUsed) and maintains a canonical digest of its
// (symbol, used)-sequence incrementally in O(1) per mutation.
type chain struct {
	f    adt.Folder
	hist trace.History
	syms []trace.Sym
	// states[k] is the folded state of hist[:k]; states[0] is the empty
	// state, so len(states) == len(hist)+1.
	states []adt.State
	// outs[k-1] is f's output for the k-th input of hist applied at
	// states[k-1], i.e. the output of the operation committing hist[:k].
	outs []trace.Value
	// used marks prefix lengths already assigned to a commit index.
	used []bool
	dig  trace.Digest
}

func newChain(f adt.Folder) chain {
	return chain{f: f, states: []adt.State{f.Empty()}}
}

func (c *chain) len() int { return len(c.hist) }

func (c *chain) state() adt.State { return c.states[len(c.states)-1] }

// push appends input in (interned as sym) to the chain.
func (c *chain) push(in trace.Value, sym trace.Sym) {
	st := c.state()
	c.pushPre(in, sym, c.f.Step(st, in), c.f.Out(st, in))
}

// pushPre is push with the folder calls hoisted: stIn and out are
// f.Step/f.Out of in at the current end state, already computed by the
// caller (the reduced searches share the pair with the sleep-set
// propagation instead of computing it twice per branch).
func (c *chain) pushPre(in trace.Value, sym trace.Sym, stIn adt.State, out trace.Value) {
	c.dig = c.dig.Add(trace.HashElem(len(c.hist), sym, false))
	c.hist = append(c.hist, in)
	c.syms = append(c.syms, sym)
	c.states = append(c.states, stIn)
	c.outs = append(c.outs, out)
	c.used = append(c.used, false)
}

// pop undoes the most recent push. The popped element must be unused.
func (c *chain) pop() {
	n := len(c.hist) - 1
	c.dig = c.dig.Sub(trace.HashElem(n, c.syms[n], false))
	c.hist = c.hist[:n]
	c.syms = c.syms[:n]
	c.states = c.states[:n+1]
	c.outs = c.outs[:n]
	c.used = c.used[:n]
}

// setUsed marks prefix length k as assigned to a commit index.
func (c *chain) setUsed(k int) {
	c.dig = c.dig.Sub(trace.HashElem(k-1, c.syms[k-1], false)).Add(trace.HashElem(k-1, c.syms[k-1], true))
	c.used[k-1] = true
}

// clearUsed undoes setUsed(k).
func (c *chain) clearUsed(k int) {
	c.dig = c.dig.Sub(trace.HashElem(k-1, c.syms[k-1], true)).Add(trace.HashElem(k-1, c.syms[k-1], false))
	c.used[k-1] = false
}

// memoKey is the fixed-size memoization key of a search node: the action
// index plus the digests of the chain and the availability multiset.
type memoKey struct {
	i    int32
	c, a trace.Digest
}

type searcher struct {
	ctx       context.Context
	f         adt.Folder
	t         trace.Trace
	budget    int
	memoLimit int
	nodes     int
	// por enables the sleep-set reduction over extension branch sets;
	// pruned counts the branches it skipped (DESIGN.md, decision 12).
	por    bool
	pruned int
	in     *trace.Interner
	// isyms[i] is the interned symbol of t[i].Input.
	isyms  []trace.Sym
	failed map[memoKey]struct{}
	chain  chain
	avail  trace.SymMultiset
	// visitedPool recycles the per-response visited sets of
	// extendAndCommit, keeping commit handling allocation-free after
	// warmup.
	visitedPool trace.SetPool[visKey]
	// assigned maps commit (response) indices to the prefix length they
	// claimed, on the successful path; best is the final chain's history.
	assigned map[int]int
	best     trace.History
	// audit shadows the failed set with full string keys under the
	// memocheck build tag (digest-collision counting); a no-op otherwise.
	audit memoAudit
}

func newSearcher(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) *searcher {
	s := &searcher{
		ctx:       ctx,
		f:         f,
		t:         t,
		budget:    set.BudgetOr(DefaultBudget),
		memoLimit: set.MemoLimit,
		por:       set.POR,
		in:        trace.NewInterner(),
		isyms:     make([]trace.Sym, len(t)),
		failed:    make(map[memoKey]struct{}),
		chain:     newChain(f),
	}
	for i, a := range t {
		s.isyms[i] = s.in.Sym(a.Input)
	}
	s.avail = trace.NewSymMultiset(s.in.Len())
	return s
}

// ctxPollMask throttles context polling in the search hot loops: the
// context is consulted once every ctxPollMask+1 spent nodes.
const ctxPollMask = 0x3ff

func (s *searcher) spend() error {
	s.nodes++
	if s.nodes > s.budget {
		return ErrBudget
	}
	if s.nodes&ctxPollMask == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// run processes the trace from action index i against the searcher's
// current chain and multiset of invoked-but-uncommitted inputs; both are
// restored before it returns.
func (s *searcher) run(i int) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	if i == len(s.t) {
		s.best = s.chain.hist.Clone()
		if s.assigned == nil {
			s.assigned = map[int]int{}
		}
		return true, nil
	}
	key := memoKey{i: int32(i), c: s.chain.dig, a: s.avail.Digest()}
	if _, hit := s.failed[key]; hit {
		if memocheckEnabled {
			s.auditHit(key)
		}
		return false, nil
	}
	a := s.t[i]
	var ok bool
	var err error
	switch a.Kind {
	case trace.Inv:
		s.avail.Add(s.isyms[i], 1)
		ok, err = s.run(i + 1)
		s.avail.Add(s.isyms[i], -1)
	case trace.Res:
		ok, err = s.commit(i, a)
	default:
		return false, fmt.Errorf("lin: action %v does not belong to sig_T", a)
	}
	if err != nil {
		return false, err
	}
	if !ok {
		if s.memoLimit <= 0 || len(s.failed) < s.memoLimit {
			s.failed[key] = struct{}{}
			if memocheckEnabled {
				s.auditInsert(key)
			}
		}
		return false, nil
	}
	return true, nil
}

// commit handles a response action: the commit history g(i) must be a
// prefix of the chain (possibly created by extending it), ending with the
// response's input and explaining its output, at a prefix length no other
// commit has claimed.
func (s *searcher) commit(i int, a trace.Action) (bool, error) {
	asym := s.isyms[i]
	// Option 1: claim an existing unused prefix length. Elements already
	// in the chain were drawn from inputs invoked before the action that
	// appended them, hence before i, so Validity holds automatically.
	for k := 1; k <= s.chain.len(); k++ {
		if s.chain.used[k-1] || s.chain.syms[k-1] != asym || s.chain.outs[k-1] != a.Output {
			continue
		}
		s.chain.setUsed(k)
		ok, err := s.run(i + 1)
		s.chain.clearUsed(k)
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = k
			return true, nil
		}
	}
	// Option 2: extend the chain with fresh inputs from avail, the last
	// being the response's own input. Intermediate appended elements
	// create new (unused) prefix lengths that later commits may claim.
	// The extension search starts with an empty sleep set: sleep sets are
	// local to one response's extension enumeration, so the verdict of a
	// run node stays a function of its (i, chain, avail) memo key.
	visited := s.visitedPool.Get()
	ok, err := s.extendAndCommit(i, a, asym, visited, check.SleepSet{})
	s.visitedPool.Put(visited)
	return ok, err
}

// visKey identifies a (chain, avail) configuration within one response's
// extension search.
type visKey struct{ c, a trace.Digest }

// extendAndCommit explores extensions of the chain drawn from avail. At
// every step it may close the extension by appending the response's input
// (if the output matches) or append any other available input and
// continue. visited prunes permutations reaching identical (chain, avail)
// configurations within this response.
//
// sleep is the sleep set of the partial-order reduction (DESIGN.md,
// decision 12): appending a sleeping symbol here is skipped because the
// same extension, with that symbol commuted to the front, was already
// explored under an earlier sibling branch. After a branch's subtree is
// exhausted its symbol goes to sleep for the later siblings; a child
// inherits the sleeping symbols that are independent with the branch it
// was reached by (dependent ones wake up). The close branch never sleeps
// — claiming the response's own input conflicts with every reordering.
func (s *searcher) extendAndCommit(i int, a trace.Action, asym trace.Sym, visited map[visKey]struct{}, sleep check.SleepSet) (bool, error) {
	if err := s.spend(); err != nil {
		return false, err
	}
	vk := visKey{c: s.chain.dig, a: s.avail.Digest()}
	if _, hit := visited[vk]; hit {
		return false, nil
	}
	visited[vk] = struct{}{}

	// Close: append the response's own input.
	if s.avail.Count(asym) > 0 && s.f.Out(s.chain.state(), a.Input) == a.Output {
		s.chain.push(a.Input, asym)
		k := s.chain.len()
		s.chain.setUsed(k)
		s.avail.Add(asym, -1)
		ok, err := s.run(i + 1)
		s.avail.Add(asym, 1)
		s.chain.clearUsed(k)
		s.chain.pop()
		if err != nil {
			return false, err
		}
		if ok {
			s.assigned[i] = k
			return true, nil
		}
	}
	// Continue: append some other available input as an intermediate.
	for sym := trace.Sym(0); int(sym) < s.avail.NumSyms(); sym++ {
		if s.avail.Count(sym) <= 0 {
			continue
		}
		if s.por && sleep.Has(sym) {
			s.pruned++
			continue
		}
		in := s.in.Value(sym)
		st := s.chain.state()
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.por {
			childSleep = sleep.FilterIndependent(s.f, s.in, st, in, stIn, outIn)
		}
		s.avail.Add(sym, -1)
		s.chain.pushPre(in, sym, stIn, outIn)
		ok, err := s.extendAndCommit(i, a, asym, visited, childSleep)
		s.chain.pop()
		s.avail.Add(sym, 1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		if s.por {
			sleep = sleep.Add(sym)
		}
	}
	return false, nil
}
