package lin

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/trace"
)

// This file makes Appendix B's constructions executable: the sequential
// witness of the classical definition can be verified against Definitions
// 41–45 directly, and Lemma 2's construction converts it into a witness
// for the new definition. Tests exercise the construction on random
// traces, mechanically validating the classical ⇒ new direction of
// Theorem 1 (the direction that survives repeated events).

// VerifySequential checks a classical sequential witness against the
// definitions of Appendix A:
//
//   - it is a permutation of all operations of the (completed) trace
//     (Definition 41, with Definition 40's completion of pending ops);
//   - outputs of operations completed in t agree with the ADT along the
//     order (Definition 38);
//   - it preserves the order of non-overlapping operations: if one
//     operation's response precedes another's invocation in t, it comes
//     first (Definition 44).
func VerifySequential(f adt.Folder, t trace.Trace, seq Linearization) error {
	if !t.WellFormed() {
		return fmt.Errorf("lin: sequential witness for ill-formed trace")
	}
	ops := collectOps(t)
	if len(seq) != len(ops) {
		return fmt.Errorf("lin: witness has %d operations, trace has %d", len(seq), len(ops))
	}
	seen := make([]bool, len(ops))
	st := f.Empty()
	pos := make([]int, len(ops)) // op index -> position in seq
	for k, j := range seq {
		if j < 0 || j >= len(ops) || seen[j] {
			return fmt.Errorf("lin: witness is not a permutation")
		}
		seen[j] = true
		pos[j] = k
		op := ops[j]
		if op.res >= 0 {
			if got := f.Out(st, op.input); got != op.output {
				return fmt.Errorf("lin: op %d output %q, ADT gives %q at its position", j, op.output, got)
			}
		}
		st = f.Step(st, op.input)
	}
	for a, opA := range ops {
		for b, opB := range ops {
			if opA.res >= 0 && opA.res < opB.inv && pos[a] > pos[b] {
				return fmt.Errorf("lin: real-time order violated: op %d completed before op %d began", a, b)
			}
		}
	}
	return nil
}

// WitnessFromSequential performs Lemma 2's construction: given a
// sequential witness t_seq (as an operation order), build the
// linearization function g with g(i) = inputs(t_seq, σ(i)) for every
// response index i — the history of inputs up to and including the
// operation's position in the sequential order.
//
// By Lemma 2, g is a linearization function for t whenever the sequential
// witness is valid, so VerifyWitness must accept the result; the tests
// check exactly that.
func WitnessFromSequential(t trace.Trace, seq Linearization) (Witness, error) {
	ops := collectOps(t)
	if len(seq) != len(ops) {
		return nil, fmt.Errorf("lin: witness has %d operations, trace has %d", len(seq), len(ops))
	}
	// Prefix history of the sequential trace at each position.
	prefix := make([]trace.History, len(seq)+1)
	prefix[0] = trace.History{}
	for k, j := range seq {
		prefix[k+1] = prefix[k].Append(ops[j].input)
	}
	pos := make([]int, len(ops))
	for k, j := range seq {
		pos[j] = k
	}
	w := Witness{}
	for j, op := range ops {
		if op.res >= 0 {
			w[op.res] = prefix[pos[j]+1]
		}
	}
	return w, nil
}
