package lin

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

func p(v string) trace.Value { return adt.ProposeInput(v) }
func d(v string) trace.Value { return adt.DecideOutput(v) }

func checkBoth(t *testing.T, f adt.Folder, tr trace.Trace) (newDef, classical bool) {
	t.Helper()
	r1, err := Check(context.Background(), f, tr)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if r1.OK {
		if err := VerifyWitness(f, tr, r1.Witness); err != nil {
			t.Fatalf("checker produced invalid witness: %v", err)
		}
	}
	r2, err := CheckClassical(context.Background(), f, tr)
	if err != nil {
		t.Fatalf("CheckClassical: %v", err)
	}
	if r1.OK != r2.OK {
		t.Fatalf("definitions disagree (Theorem 1 violated): new=%v classical=%v on %v",
			r1.OK, r2.OK, tr)
	}
	return r1.OK, r2.OK
}

// The linearizable example of §2.2: c1 proposes v1, c2 proposes v2, c2
// decides v2, c1 decides v2. The history chain [p(v2)], [p(v2), p(v1)]
// witnesses it.
func TestSection22LinearizableExample(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v1")),
		trace.Invoke("c2", 1, p("v2")),
		trace.Response("c2", 1, p("v2"), d("v2")),
		trace.Response("c1", 1, p("v1"), d("v2")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("the §2.2 example must be linearizable")
	}
}

// First non-linearizable example of §2.2: c1 proposes v1, c2 proposes v2,
// c1 decides v1, c2 decides v2 — two different decisions.
func TestSection22NonLinearizable1(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v1")),
		trace.Invoke("c2", 1, p("v2")),
		trace.Response("c1", 1, p("v1"), d("v1")),
		trace.Response("c2", 1, p("v2"), d("v2")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); ok {
		t.Fatal("split decisions must not be linearizable")
	}
}

// Second non-linearizable example of §2.2: c1 proposes v1 and decides v2
// before v2 was ever proposed.
func TestSection22NonLinearizable2(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v1")),
		trace.Response("c1", 1, p("v1"), d("v2")),
		trace.Invoke("c2", 1, p("v2")),
		trace.Response("c2", 1, p("v2"), d("v2")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); ok {
		t.Fatal("deciding a not-yet-proposed value must not be linearizable")
	}
}

// A later response may need a commit history shorter than an earlier one:
// c1 (proposing a) decides b before c2 (proposing b) decides b. The only
// witness assigns g(res c1) = [p(b), p(a)] and g(res c2) = [p(b)], with
// commit histories out of trace order.
func TestShorterCommitAfterLonger(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Response("c1", 1, p("a"), d("b")),
		trace.Response("c2", 1, p("b"), d("b")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("out-of-order commit lengths must be found")
	}
}

func TestSequentialTraces(t *testing.T) {
	// Sequential executions of Figure 1: first proposal decided by all.
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("x")),
		trace.Response("c1", 1, p("x"), d("x")),
		trace.Invoke("c2", 1, p("y")),
		trace.Response("c2", 1, p("y"), d("x")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("sequential spec-following trace must be linearizable")
	}
	// A sequential trace violating the spec.
	bad := trace.Trace{
		trace.Invoke("c1", 1, p("x")),
		trace.Response("c1", 1, p("x"), d("x")),
		trace.Invoke("c2", 1, p("y")),
		trace.Response("c2", 1, p("y"), d("y")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, bad); ok {
		t.Fatal("second proposer deciding own value sequentially is wrong")
	}
}

func TestPendingInvocationsAllowed(t *testing.T) {
	// A pending proposal may be linearized to explain another's decision.
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Response("c2", 1, p("b"), d("a")),
		// c1 never responds.
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("pending invocation must be linearizable as a side effect")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Non-overlapping register operations: a write completes, then a read
	// starts; the read must observe the write.
	w, r := adt.WriteInput("x"), adt.ReadInput()
	tr := trace.Trace{
		trace.Invoke("c1", 1, w),
		trace.Response("c1", 1, w, adt.WriteOutput()),
		trace.Invoke("c2", 1, r),
		trace.Response("c2", 1, r, adt.ReadOutput(adt.Bottom)),
	}
	if ok, _ := checkBoth(t, adt.Register{}, tr); ok {
		t.Fatal("read after completed write must not miss it")
	}
	tr[3] = trace.Response("c2", 1, r, adt.ReadOutput("x"))
	if ok, _ := checkBoth(t, adt.Register{}, tr); !ok {
		t.Fatal("read observing the completed write must be linearizable")
	}
}

func TestOverlappingRegisterOps(t *testing.T) {
	// Overlapping write and read: the read may see either old or new.
	w, r := adt.WriteInput("x"), adt.ReadInput()
	for _, out := range []trace.Value{adt.ReadOutput(adt.Bottom), adt.ReadOutput("x")} {
		tr := trace.Trace{
			trace.Invoke("c1", 1, w),
			trace.Invoke("c2", 1, r),
			trace.Response("c2", 1, r, out),
			trace.Response("c1", 1, w, adt.WriteOutput()),
		}
		if ok, _ := checkBoth(t, adt.Register{}, tr); !ok {
			t.Fatalf("overlapping read returning %q must be linearizable", out)
		}
	}
}

func TestQueueLinearizability(t *testing.T) {
	enqA, enqB, deq := adt.EnqInput("a"), adt.EnqInput("b"), adt.DeqInput()
	// Sequential enq a, enq b, then two dequeues must pop a then b.
	good := trace.Trace{
		trace.Invoke("c1", 1, enqA),
		trace.Response("c1", 1, enqA, adt.WriteOutput()),
		trace.Invoke("c1", 1, enqB),
		trace.Response("c1", 1, enqB, adt.WriteOutput()),
		trace.Invoke("c2", 1, deq),
		trace.Response("c2", 1, deq, adt.ReadOutput("a")),
		trace.Invoke("c2", 1, deq),
		trace.Response("c2", 1, deq, adt.ReadOutput("b")),
	}
	if ok, _ := checkBoth(t, adt.Queue{}, good); !ok {
		t.Fatal("FIFO trace must be linearizable")
	}
	// Popping b before a sequentially is not linearizable.
	bad := good.Clone()
	bad[5] = trace.Response("c2", 1, deq, adt.ReadOutput("b"))
	bad[7] = trace.Response("c2", 1, deq, adt.ReadOutput("a"))
	if ok, _ := checkBoth(t, adt.Queue{}, bad); ok {
		t.Fatal("LIFO pops of sequential enqueues must not be linearizable")
	}
}

// Repeated events: the same input invoked by two clients; each decision
// consumes its own occurrence (the paper: duplicates "are the norm in
// practice").
func TestRepeatedInputs(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Invoke("c2", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
		trace.Response("c2", 1, p("v"), d("v")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("duplicate proposals deciding the common value must be linearizable")
	}
}

// Duplicate-sensitivity of Validity: a single invocation cannot justify
// two commit histories both ending in it at different lengths... it can,
// via the chain [p(v)] ⊂ [p(v), p(w)] where only the second ends with the
// other input. But two responses to ONE invocation are already ruled out
// by well-formedness; here we check a client re-invoking the same input.
func TestClientReinvokesSameInput(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
	}
	if ok, _ := checkBoth(t, adt.Consensus{}, tr); !ok {
		t.Fatal("re-invoking the same proposal must be linearizable")
	}
}

func TestNotWellFormedRejected(t *testing.T) {
	tr := trace.Trace{trace.Response("c1", 1, p("v"), d("v"))}
	r, err := Check(context.Background(), adt.Consensus{}, tr)
	if err != nil || r.OK {
		t.Fatalf("ill-formed trace accepted: %+v, %v", r, err)
	}
	r, err = CheckClassical(context.Background(), adt.Consensus{}, tr)
	if err != nil || r.OK {
		t.Fatalf("ill-formed trace accepted by classical: %+v, %v", r, err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Response("c1", 1, p("a"), d("a")),
		trace.Response("c2", 1, p("b"), d("a")),
	}
	if _, err := Check(context.Background(), adt.Consensus{}, tr, check.WithBudget(1)); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if _, err := CheckClassical(context.Background(), adt.Consensus{}, tr, check.WithBudget(1)); err != ErrBudget {
		t.Fatalf("expected ErrBudget from classical, got %v", err)
	}
}

func TestWitnessVerifierCatchesBadWitnesses(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
	}
	cases := []struct {
		name string
		w    Witness
	}{
		{"missing entry", Witness{}},
		{"wrong output", Witness{1: trace.History{p("w")}}},
		{"does not end with input", Witness{1: trace.History{p("v"), p("v")}}},
		{"uses uninvoked input", Witness{1: trace.History{p("w"), p("v")}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := VerifyWitness(adt.Consensus{}, tr, tt.w); err == nil {
				t.Fatal("verifier accepted an invalid witness")
			}
		})
	}
}

func TestWitnessCommitOrderViolation(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Response("c1", 1, p("a"), d("a")),
		trace.Response("c2", 1, p("b"), d("b")),
	}
	w := Witness{
		2: trace.History{p("a")},
		3: trace.History{p("b")},
	}
	if err := VerifyWitness(adt.Consensus{}, tr, w); err == nil {
		t.Fatal("incomparable commit histories must be rejected")
	}
}

// A large fault-free consensus trace must check quickly (the greedy chain
// extension path): this guards against accidental exponential behavior on
// the common case.
func TestLargeAgreeingTrace(t *testing.T) {
	var tr trace.Trace
	n := 60
	tr = append(tr, trace.Invoke("c0", 1, p("w")))
	tr = append(tr, trace.Response("c0", 1, p("w"), d("w")))
	for i := 1; i < n; i++ {
		c := trace.ClientID("c" + string(rune('0'+i%10)) + "x" + string(rune('a'+i%26)))
		in := p("v" + string(rune('a'+i%26)))
		tr = append(tr, trace.Invoke(c, 1, in))
		tr = append(tr, trace.Response(c, 1, in, d("w")))
	}
	r, err := Check(context.Background(), adt.Consensus{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("agreeing trace must be linearizable")
	}
	if err := VerifyWitness(adt.Consensus{}, tr, r.Witness); err != nil {
		t.Fatal(err)
	}
}

// CheckClassical is uncapped (DESIGN.md, decision 13): a 64-operation
// trace — beyond the former uint64 bitmask cap — decides with a verdict,
// and search-budget exhaustion still reports ErrBudget.
func TestClassicalUncappedAndBudget(t *testing.T) {
	long := make(trace.Trace, 0, 128)
	for i := 0; i < 64; i++ {
		c := trace.ClientID(fmt.Sprintf("c%d", i))
		in := adt.Tag(adt.ProposeInput("v"), fmt.Sprintf("%d", i))
		long = append(long, trace.Invoke(c, 1, in))
		long = append(long, trace.Response(c, 1, in, adt.DecideOutput("v")))
	}
	res, err := CheckClassical(context.Background(), adt.Consensus{}, long)
	if err != nil {
		t.Fatalf("64-op trace: err = %v, want a verdict (the cap fell with decision 13)", err)
	}
	if !res.OK {
		t.Fatalf("sequential 64-op trace must be linearizable*: %+v", res)
	}
	if err := VerifySequential(adt.Consensus{}, long, res.Sequential); err != nil {
		t.Fatal(err)
	}
	// The same shape one operation shorter stays on the single-word fast
	// path and agrees.
	if res, err := CheckClassical(context.Background(), adt.Consensus{}, long[:63*2]); err != nil || !res.OK {
		t.Fatalf("63-op trace: %+v, %v", res, err)
	}
	// A representable but oversized search still reports ErrBudget.
	hard := make(trace.Trace, 0, 40)
	for i := 0; i < 20; i++ {
		c := trace.ClientID(fmt.Sprintf("h%d", i))
		in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), fmt.Sprintf("%d", i))
		hard = append(hard, trace.Invoke(c, 1, in))
	}
	for i := 0; i < 20; i++ {
		c := trace.ClientID(fmt.Sprintf("h%d", i))
		in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), fmt.Sprintf("%d", i))
		hard = append(hard, trace.Response(c, 1, in, adt.DecideOutput(fmt.Sprintf("v%d", i%2))))
	}
	_, err = CheckClassical(context.Background(), adt.Consensus{}, hard, check.WithBudget(50))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget: err = %v, want ErrBudget", err)
	}
}
