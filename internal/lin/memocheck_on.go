//go:build memocheck

package lin

import (
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/trace"
)

// The memocheck build: every entry of the digest-keyed memo table also
// stores the full string encoding of the state it stands for, and every
// digest hit re-derives the encoding and compares. A mismatch means two
// distinct search states collided in the 128-bit digest space — the
// residual soundness risk of DESIGN.md decision 7 — and increments the
// process-wide collision counter, which the tagged test asserts is zero.
const memocheckEnabled = true

var memoCollisions atomic.Uint64

// MemoCollisions reports digest collisions observed in the memo tables
// since process start.
func MemoCollisions() uint64 { return memoCollisions.Load() }

// memoAudit shadows one searcher's failed-set with full string keys.
type memoAudit struct {
	keys map[memoKey]string
}

// memoString is the exact state the memo digest stands for: the action
// index, the chain's (value, used) sequence and the availability
// multiset.
func (s *searcher) memoString(i int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(i))
	b.WriteByte('|')
	for p, v := range s.chain.hist {
		b.WriteString(string(v))
		if s.chain.used[p] {
			b.WriteByte('*')
		}
		b.WriteByte(0)
	}
	b.WriteByte('|')
	for sym := 0; sym < s.avail.NumSyms(); sym++ {
		if c := s.avail.Count(trace.Sym(sym)); c > 0 {
			b.WriteString(strconv.Itoa(sym))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(c))
			b.WriteByte(',')
		}
	}
	return b.String()
}

func (s *searcher) auditInsert(k memoKey) {
	if s.audit.keys == nil {
		s.audit.keys = map[memoKey]string{}
	}
	full := s.memoString(int(k.i))
	if prev, ok := s.audit.keys[k]; ok && prev != full {
		memoCollisions.Add(1)
		return
	}
	s.audit.keys[k] = full
}

func (s *searcher) auditHit(k memoKey) {
	if prev, ok := s.audit.keys[k]; ok && prev != s.memoString(int(k.i)) {
		memoCollisions.Add(1)
	}
}

var classicalCollisions atomic.Uint64

// ClassicalMemoCollisions reports digest collisions observed in the
// classical checker's spill-path memo tables since process start.
func ClassicalMemoCollisions() uint64 { return classicalCollisions.Load() }

// classicalAudit shadows one classical searcher's failed-set with the
// exact placed sets its spill digests stand for. Only the spill path is
// audited: up to 63 operations the key carries the placed bitmask
// verbatim, so it cannot collide; beyond that (w0, w1) is the lossy
// 128-bit BitSet digest of decision 13.
type classicalAudit struct {
	keys map[classicalKey]string
}

// placedString is the exact placed set the spill digest stands for (the
// stateID in the key is interned, not hashed, so it needs no shadow).
func (s *classicalSearcher) placedString() string {
	var b strings.Builder
	for j := 0; j < len(s.ops); j++ {
		if s.placedSpill.Has(j) {
			b.WriteString(strconv.Itoa(j))
			b.WriteByte(',')
		}
	}
	return b.String()
}

func (s *classicalSearcher) auditInsert(k classicalKey) {
	if !s.spill {
		return
	}
	if s.audit.keys == nil {
		s.audit.keys = map[classicalKey]string{}
	}
	full := s.placedString()
	if prev, ok := s.audit.keys[k]; ok && prev != full {
		classicalCollisions.Add(1)
		return
	}
	s.audit.keys[k] = full
}

func (s *classicalSearcher) auditHit(k classicalKey) {
	if !s.spill {
		return
	}
	if prev, ok := s.audit.keys[k]; ok && prev != s.placedString() {
		classicalCollisions.Add(1)
	}
}
