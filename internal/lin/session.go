package lin

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// Session is an incremental linearizability checker (checker API v2,
// DESIGN.md decision 11): actions are fed one at a time, and a growing
// trace is re-checked in time proportional to the new actions instead of
// from scratch.
//
// The engine maintains the breadth counterpart of Check's depth-first
// search: the frontier of all reachable search configurations — commit
// chains with their claimed-prefix marks, interned and deduplicated by
// their incremental 128-bit digests — after the actions fed so far.
// Because the per-action transition relation of the search never looks
// ahead in the trace, the frontier after k actions is independent of the
// future, so Feed advances it in place:
//
//   - an invocation only extends the invoked-inputs multiset (every
//     configuration's availability is derived from it);
//   - a response replaces the frontier by its successor set: each
//     configuration either has the response claim an unused chain prefix
//     or extends the chain through available inputs, exactly Check's
//     branch set, deduplicated across configurations.
//
// The fed trace is linearizable iff the frontier is non-empty, and a
// NotLinearizable verdict is final: no continuation can revive an empty
// frontier. Verdicts therefore provably agree with one-shot Check on
// every prefix (the session property tests assert this on randomized
// traces).
//
// Streaming memory bound (DESIGN.md, decision 17). With compaction on
// (check.WithCompaction, the default) a configuration's fully-claimed
// chain prefix — inert under every future transition, since claims only
// set marks and extension only appends — is dropped from storage and
// replaced by a trace.ChainPrefix summary carrying its length and (with
// witnesses) its values. Configuration identity is keyed on
// future-relevant content only: the chain's end state, the full-chain
// element multiset (availability is invoked minus it), and the retained
// suffix entries — symbol, claim mark and output, at suffix-relative
// positions. A dropped prefix's order therefore leaves the identity:
// configurations that committed the same operations in different orders
// merge at deduplication once their prefixes compact. That merge is
// what bounds the frontier on capture-shaped histories (long runs of
// overlapping operations), where order-distinct identities would keep
// every commit-order permutation alive; it is sound because a
// configuration's future transitions — claims check suffix entries,
// extensions fold from the end state over the availability — are fully
// determined by the keyed content, and the verdict is existential.
// Session memory is then bounded by the trace's symbol alphabet and
// operation overlap instead of its length; configuration structs and
// mark slices are pooled across feeds to keep steady-state allocation
// flat. With check.WithWitness the dropped input values are retained
// (shared, once per summary) so witness assembly still reconstructs
// full commit histories; bounded-memory streaming runs switch witnesses
// off.
//
// One budget (check.WithBudget) spans the whole session, spent with the
// same per-step granularity as Check — or, with check.WithFeedBudget,
// is rebased at every Feed so a heavy-tailed action cannot starve later
// feeds; check.WithMemoLimit bounds the frontier size (exceeding it
// returns ErrMemo — frontier configurations are live state and cannot
// be dropped soundly). check.WithWorkers(n > 1) expands each response's
// frontier on n workers over a sharded deduplication set. Errors
// (budget, memo limit, context cancellation, non-sig actions) are
// terminal: the session sticks to the error and reports verdict
// Unknown.
//
// A Session is not safe for concurrent use by multiple goroutines (its
// workers parallelize internally).
type Session struct {
	ctx    context.Context
	f      adt.Folder
	set    check.Settings
	budget int
	// pooled gates the configuration/mark-slice pools and the
	// per-expansion scratch: they are single-threaded caches, so
	// parallel expansion (Workers > 1) allocates instead.
	pooled bool
	// dagSleep gates the DAG-level sleep-set carry (decision 17): the
	// sleep set a configuration was emitted with seeds the next
	// response's extension search, so the decision-12 reduction also
	// prunes orders split across responses. Duplicate emissions merge
	// by sleep-set intersection, which the parallel path's sharded
	// first-wins deduplication cannot do — so the carry is sequential
	// (and POR) only.
	dagSleep bool

	in      *trace.Interner
	invoked trace.SymMultiset
	pending map[trace.ClientID]pendingInv

	frontier []*cfg
	nodes    atomic.Int64
	// feedBase is the nodes value at the current Feed's entry; spend
	// charges against nodes−feedBase when FeedBudget is set (always 0
	// with the default lifetime budget). Written only between
	// expansions, so concurrent spend calls read it race-free.
	feedBase int64
	// pruned counts extension branches the sleep-set reduction skipped
	// (check.WithPOR; atomic because expansion workers prune
	// concurrently).
	pruned atomic.Int64
	fed    int

	err   error  // terminal error, sticky
	notWF string // non-empty once the fed trace went ill-formed, sticky

	// Recycled search state (pooled sessions only): configuration
	// structs and used-mark slices retired when a frontier is replaced,
	// per-response visited sets, and the availability scratch multiset.
	cfgPool  []*cfg
	usedPool [][]bool
	visPool  trace.SetPool[trace.Digest]
	availBuf trace.SymMultiset

	// fast, when non-nil, is the ADT-specialized streaming core the
	// session delegates to instead of the frontier engine (DESIGN.md,
	// decision 15; NewSessionFast). The fed trace is recorded in rec so
	// that a fragment exit can fall back by replaying it through a fresh
	// exact session — after which the session is indistinguishable from
	// an exact one fed the same actions (frontier, budget spend and
	// verdicts included). Fast-path work never spends the budget; it is
	// accounted separately in fastNodes (one per fed action).
	fast      FastChecker
	fastRej   bool // core rejected: NotLinearizable, final
	fastNodes int
	rec       trace.Trace
}

type pendingInv struct {
	pending bool
	input   trace.Value
	// idx is the invocation's trace index; maintained (and used) only by
	// the fast-path delegate.
	idx int
}

// cfg is one frontier configuration: a commit-history chain with its
// claimed-prefix marks. Configurations are immutable once installed in
// a frontier — successors copy what they change and share the rest —
// and are identified by their behavioral digest: end state, full-chain
// element multiset, and the retained suffix's (relative position,
// symbol, claim mark, output) entries. Everything a future transition
// can observe is in the digest and nothing else is, so deduplication
// merges exactly the configurations with identical futures — in
// particular, compacted configurations whose dropped prefixes committed
// the same operations in different orders.
//
// pre, when non-nil, summarizes a compacted fully-claimed chain prefix
// (trace.ChainPrefix): suffix index k is absolute chain position
// pre.N + k (witness assembly needs the absolute claimed lengths);
// elems always counts the full chain, prefix included.
type cfg struct {
	pre   *trace.ChainPrefix
	syms  []trace.Sym
	outs  []trace.Value
	used  []bool
	end   adt.State
	elems trace.SymMultiset
	dig   trace.Digest
	// sleep is the carried sleep set of the DAG-level reduction: the
	// sleep set in force when this configuration was emitted, seeding
	// the next response's extension search (zero unless dagSleep).
	sleep check.SleepSet
	// asn is the assignment trail (response index -> claimed prefix
	// length) that produced this configuration, for witness assembly;
	// nil when witnesses are off.
	asn *asnNode
}

type asnNode struct {
	prev *asnNode
	res  int
	k    int
}

// compactMin is the fully-claimed prefix length a configuration must
// accumulate before compaction absorbs it. It is deliberately small:
// permutation-equivalent configurations only merge once the entries
// they ordered differently leave the retained suffix, so an eagerly
// compacted window is what keeps the frontier overlap-bounded on
// capture-shaped histories. The remaining chunking just amortizes
// summary construction; the suffix copy itself is within a constant of
// the claim path's mark copy.
const compactMin = 4

// maxPool bounds the retired-configuration pools, as a backstop against
// a transiently huge frontier parking unbounded free lists.
const maxPool = 4096

// NewSession starts an incremental check of an initially empty trace
// against ADT f. See Session for the engine and option semantics.
func NewSession(ctx context.Context, f adt.Folder, opts ...check.Option) *Session {
	return newSessionSettings(ctx, f, check.NewSettings(opts...))
}

// NewSessionFast is NewSession with fast-path dispatch (DESIGN.md,
// decision 15): when folder f has a streaming specialized core
// (register, consensus) and check.WithExact was not requested, Feed
// costs O(1) amortized per action instead of a frontier expansion, and
// no budget is spent while the trace stays inside the core's fragment
// (Nodes then counts fed actions). The first action outside the
// fragment falls back transparently: the recorded trace is replayed
// through the exact frontier engine — spending budget as an exact
// session would — and the session continues exactly. Verdicts agree
// with NewSession on every prefix either way.
func NewSessionFast(ctx context.Context, f adt.Folder, opts ...check.Option) *Session {
	set := check.NewSettings(opts...)
	s := newSessionSettings(ctx, f, set)
	if !set.Exact {
		s.fast = NewFastChecker(f)
	}
	return s
}

func newSessionSettings(ctx context.Context, f adt.Folder, set check.Settings) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{
		ctx:      ctx,
		f:        f,
		set:      set,
		budget:   set.BudgetOr(DefaultBudget),
		pooled:   set.Workers <= 1,
		dagSleep: set.POR && set.Workers <= 1,
		in:       trace.NewInterner(),
		pending:  map[trace.ClientID]pendingInv{},
		frontier: []*cfg{{end: f.Empty(), dig: trace.HashString(string(f.Empty()))}},
	}
}

// spend charges n search nodes against the session budget (rebased per
// Feed under FeedBudget) and polls the context at ctxPollMask
// boundaries. Safe for concurrent use by expansion workers.
func (s *Session) spend(n int) error {
	if n <= 0 {
		return nil
	}
	v := s.nodes.Add(int64(n))
	if v-s.feedBase > int64(s.budget) {
		return ErrBudget
	}
	if v&ctxPollMask < int64(n) {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of actions fed so far.
func (s *Session) Len() int { return s.fed }

// Nodes returns the cumulative number of search nodes spent, plus — for
// fast-path sessions — one node per action the specialized core
// processed (fast-path nodes are not charged against the budget).
func (s *Session) Nodes() int { return int(s.nodes.Load()) + s.fastNodes }

// Pruned returns the cumulative number of extension branches the
// partial-order reduction skipped (0 with check.WithPOR(false)).
func (s *Session) Pruned() int { return int(s.pruned.Load()) }

// Feed appends action a to the trace under check and advances the
// frontier. The returned error is terminal (budget or memo exhaustion,
// context cancellation, an action outside sig_T fed as a switch is
// instead treated as ill-formedness, matching Check); ill-formed traces
// yield a NotLinearizable verdict, not an error.
func (s *Session) Feed(a trace.Action) error {
	if s.err != nil {
		return s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return err
	}
	if s.set.FeedBudget {
		s.feedBase = s.nodes.Load()
	}
	if s.fast != nil {
		return s.feedFast(a)
	}
	idx := s.fed
	s.fed++
	if s.notWF != "" {
		return nil // verdict already final
	}
	switch a.Kind {
	case trace.Inv:
		st := s.pending[a.Client]
		if st.pending {
			s.notWF = "trace is not well-formed"
			return nil
		}
		s.pending[a.Client] = pendingInv{pending: true, input: a.Input}
		s.invoked.Add(s.in.Sym(a.Input), 1)
		if err := s.spend(len(s.frontier)); err != nil {
			s.err = err
			return err
		}
	case trace.Res:
		st := s.pending[a.Client]
		if !st.pending || st.input != a.Input {
			s.notWF = "trace is not well-formed"
			return nil
		}
		s.pending[a.Client] = pendingInv{}
		if err := s.expand(a, idx); err != nil {
			s.err = err
			return err
		}
	default:
		// Switch actions do not belong to sig_T; Check classifies such
		// traces as ill-formed.
		s.notWF = "trace is not well-formed"
	}
	return nil
}

// feedFast is Feed's fast-path delegate: the same well-formedness
// bookkeeping as the frontier path, with the core deciding the verdict
// and FastExit triggering the fallback replay. A rejected (or
// ill-formed) verdict is final, but subsequent actions still maintain
// the well-formedness state so reasons keep matching the exact session.
func (s *Session) feedFast(a trace.Action) error {
	idx := s.fed
	s.fed++
	s.rec = append(s.rec, a)
	if s.notWF != "" {
		return nil // verdict already final
	}
	switch a.Kind {
	case trace.Inv:
		st := s.pending[a.Client]
		if st.pending {
			s.notWF = "trace is not well-formed"
			return nil
		}
		if !s.fastRej {
			switch s.fast.Inv(a.Input, idx) {
			case FastExit:
				return s.fastFallback()
			case FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.pending[a.Client] = pendingInv{pending: true, input: a.Input, idx: idx}
	case trace.Res:
		st := s.pending[a.Client]
		if !st.pending || st.input != a.Input {
			s.notWF = "trace is not well-formed"
			return nil
		}
		if !s.fastRej {
			switch s.fast.Res(a.Input, a.Output, st.idx, idx) {
			case FastExit:
				return s.fastFallback()
			case FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.pending[a.Client] = pendingInv{}
	default:
		// Switch actions do not belong to sig_T; Check classifies such
		// traces as ill-formed.
		s.notWF = "trace is not well-formed"
	}
	return nil
}

// fastFallback replays the recorded trace through a fresh exact session
// and adopts its entire state, so every later Feed (and the current
// verdict) behaves as if the session had been exact from the start. The
// replay spends budget from zero, exactly as an exact session fed the
// same actions would have.
func (s *Session) fastFallback() error {
	rec := s.rec
	s.fast, s.rec = nil, nil
	ex := newSessionSettings(s.ctx, s.f, s.set)
	err := ex.FeedAll(rec)
	s.in = ex.in
	s.invoked = ex.invoked
	s.pending = ex.pending
	s.frontier = ex.frontier
	s.nodes.Store(ex.nodes.Load())
	s.feedBase = ex.feedBase
	s.pruned.Store(ex.pruned.Load())
	s.fed = ex.fed
	s.err = ex.err
	s.notWF = ex.notWF
	s.cfgPool, s.usedPool = ex.cfgPool, ex.usedPool
	s.visPool, s.availBuf = ex.visPool, ex.availBuf
	return err
}

// FeedAll feeds every action of t in order, stopping at the first
// terminal error.
func (s *Session) FeedAll(t trace.Trace) error {
	for _, a := range t {
		if err := s.Feed(a); err != nil {
			return err
		}
	}
	return nil
}

// Verdict reports the current three-valued verdict for the trace fed so
// far: Unknown after a terminal error, otherwise Linearizable iff the
// frontier is non-empty and the trace is well-formed.
func (s *Session) Verdict() check.Verdict {
	switch {
	case s.err != nil:
		return check.Unknown
	case s.notWF != "":
		return check.NotLinearizable
	case s.fast != nil:
		if s.fastRej {
			return check.NotLinearizable
		}
		return check.Linearizable
	case len(s.frontier) == 0:
		return check.NotLinearizable
	default:
		return check.Linearizable
	}
}

// Result returns the verdict for the trace fed so far in Check's Result
// form (with a witness on positive verdicts unless WithWitness(false)),
// or the session's terminal error.
func (s *Session) Result() (Result, error) {
	if s.err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, s.err
	}
	if s.notWF != "" {
		return Result{OK: false, Reason: s.notWF, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	if s.fast != nil {
		if s.fastRej {
			return Result{OK: false, Reason: "no linearization function exists", Nodes: s.Nodes()}, nil
		}
		r := Result{OK: true, Nodes: s.Nodes()}
		if s.set.Witness {
			r.Witness = s.fast.Witness()
		}
		return r, nil
	}
	if len(s.frontier) == 0 {
		return Result{OK: false, Reason: "no linearization function exists", Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	r := Result{OK: true, Nodes: s.Nodes(), Pruned: s.Pruned()}
	if s.set.Witness {
		r.Witness = s.witness(s.frontier[0])
	}
	return r, nil
}

// witness reconstructs the linearization function of one surviving
// configuration: its chain (compacted prefix values plus retained
// suffix) is the maximal commit history, and the assignment trail maps
// each response index to its claimed prefix length (absolute, so
// compaction never shifts it).
func (s *Session) witness(c *cfg) Witness {
	preN := c.pre.Len()
	hist := make(trace.History, preN+len(c.syms))
	if preN > 0 {
		copy(hist, c.pre.Vals)
	}
	for i, sym := range c.syms {
		hist[preN+i] = s.in.Value(sym)
	}
	w := Witness{}
	for n := c.asn; n != nil; n = n.prev {
		w[n.res] = hist[:n.k].Clone()
	}
	return w
}

// expand replaces the frontier by its successor set under response a.
// Retired source configurations (and merged duplicates) return to the
// session pools; with compaction on, every successor's fully-claimed
// prefix is absorbed into a shared summary before installation.
func (s *Session) expand(a trace.Action, resIdx int) error {
	asym := s.in.Sym(a.Input)
	var merge func(kept, dup *cfg) *cfg
	if s.dagSleep {
		// Two expansion paths reached the same configuration digest with
		// possibly different carried sleep sets: only symbols slept on
		// both stay asleep (union would prune orders one path still
		// owes). The duplicate's struct and marks recycle.
		merge = func(kept, dup *cfg) *cfg {
			kept.sleep = kept.sleep.Intersect(dup.sleep)
			s.putCfg(dup)
			return kept
		}
	}
	old := s.frontier
	next, err := check.ExpandFrontier(s.ctx, old, s.set, s.spend,
		func(c *cfg) trace.Digest { return c.dig },
		merge,
		func(c *cfg, emit func(*cfg)) error {
			return s.expandCfg(c, a, asym, resIdx, emit)
		})
	if err != nil {
		if errors.Is(err, check.ErrFrontierLimit) {
			return ErrMemo
		}
		return err
	}
	if s.set.Compact {
		s.compactFrontier(next)
		// Compaction re-keys identities, so configurations distinct at
		// expansion time may coincide now — merge them immediately rather
		// than letting duplicates double the next response's work.
		next = s.dedupFrontier(next)
	}
	// Successors never alias a source's struct or marks (claims copy the
	// marks, closures build fresh arrays), so the replaced frontier's
	// configurations recycle wholesale.
	for _, c := range old {
		s.putCfg(c)
	}
	s.frontier = next
	return nil
}

// expandCfg emits every successor of configuration c under response a:
// claims of matching unused prefix lengths, plus every chain extension
// through available inputs that closes with the response's own input —
// exactly the branch set of the depth-first commit handler, enumerated
// exhaustively instead of short-circuiting on the first success.
func (s *Session) expandCfg(c *cfg, a trace.Action, asym trace.Sym, resIdx int, emit func(*cfg)) error {
	// Option 1: claim an existing unused prefix length (compacted
	// positions are all claimed, so scanning the suffix is exhaustive).
	for k, sym := range c.syms {
		if !c.used[k] && sym == asym && c.outs[k] == a.Output {
			emit(s.claim(c, k, resIdx))
		}
	}
	// Option 2: extend the chain with fresh inputs from the derived
	// availability multiset (invoked inputs minus the full-chain element
	// multiset), the last being the response's own input.
	var avail *trace.SymMultiset
	if s.pooled {
		s.availBuf.CopyFrom(&s.invoked)
		avail = &s.availBuf
	} else {
		cl := s.invoked.Clone()
		avail = &cl
	}
	avail.SubtractAll(&c.elems)
	if avail.Size() == 0 {
		return nil
	}
	var visited map[trace.Digest]struct{}
	if s.pooled {
		visited = s.visPool.Get()
		defer s.visPool.Put(visited)
	} else {
		visited = make(map[trace.Digest]struct{}, 8)
	}
	var seed check.SleepSet
	if s.dagSleep {
		seed = c.sleep
	}
	return s.extend(c, a, asym, resIdx, avail, visited, nil, nil, c.end, c.dig, seed, emit)
}

// claim returns c with suffix position k (absolute position pre.N + k,
// which the witness trail records; the digest re-keys at the relative
// position) marked claimed by resIdx. A claim only flips a mark on an
// existing chain entry — it commutes with every extension append — so
// the carried sleep set passes through unfiltered.
func (s *Session) claim(c *cfg, k, resIdx int) *cfg {
	pos := c.pre.Len() + k
	used := s.getUsed(len(c.used))
	copy(used, c.used)
	used[k] = true
	n := s.newCfg()
	*n = cfg{
		pre:   c.pre,
		syms:  c.syms,
		outs:  c.outs,
		used:  used,
		end:   c.end,
		elems: c.elems,
		dig:   c.dig.Sub(trace.HashElem(k, c.syms[k], false)).Add(trace.HashElem(k, c.syms[k], true)),
	}
	if s.dagSleep {
		n.sleep = c.sleep
	}
	if s.set.Witness {
		n.asn = &asnNode{prev: c.asn, res: resIdx, k: pos + 1}
	}
	return n
}

// extend explores chain extensions of c drawn from avail, emitting a
// successor whenever the extension can close with the response's input.
// ext/extOuts are the appended symbols and their outputs along the
// current search path (shared backing across siblings is safe: emit
// snapshots copy them); st tracks the extended chain's end state, and
// dig — the configuration digest extended per append at suffix-relative
// positions — keys the visited set, pruning search paths that rebuilt
// an identical extension (the emitted configuration's own identity is
// recomputed over its final content in closeExt).
//
// sleep carries the sleep set of the partial-order reduction exactly as
// in the depth-first engine (DESIGN.md, decision 12): a pruned successor
// always has an emitted permutation-equivalent successor whose future
// behaviour maps one-to-one, so frontier emptiness — the session's
// verdict — is preserved. Under dagSleep the seed is the configuration's
// carried set and each emitted successor records the set in force at its
// closing append, filtered by independence with that append — extending
// the same argument across response boundaries (decision 17).
func (s *Session) extend(c *cfg, a trace.Action, asym trace.Sym, resIdx int,
	avail *trace.SymMultiset, visited map[trace.Digest]struct{},
	ext []trace.Sym, extOuts []trace.Value, st adt.State, dig trace.Digest,
	sleep check.SleepSet, emit func(*cfg)) error {

	if err := s.spend(1); err != nil {
		return err
	}
	if _, hit := visited[dig]; hit {
		return nil
	}
	visited[dig] = struct{}{}

	// Close: append the response's own input as a claimed element.
	if avail.Count(asym) > 0 && s.f.Out(st, a.Input) == a.Output {
		stIn := s.f.Step(st, a.Input)
		var carry check.SleepSet
		if s.dagSleep {
			carry = sleep.FilterIndependent(s.f, s.in, st, a.Input, stIn, a.Output)
		}
		emit(s.closeExt(c, ext, extOuts, stIn, dig, asym, a, resIdx, carry))
	}
	// Continue: append any available input as an intermediate element.
	for sym := trace.Sym(0); int(sym) < avail.NumSyms(); sym++ {
		if avail.Count(sym) <= 0 {
			continue
		}
		if s.set.POR && sleep.Has(sym) {
			s.pruned.Add(1)
			continue
		}
		in := s.in.Value(sym)
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.set.POR {
			childSleep = sleep.FilterIndependent(s.f, s.in, st, in, stIn, outIn)
		}
		avail.Add(sym, -1)
		pos := len(c.syms) + len(ext)
		err := s.extend(c, a, asym, resIdx, avail, visited,
			append(ext, sym), append(extOuts, outIn),
			stIn, dig.Add(trace.HashElem(pos, sym, false)), childSleep, emit)
		avail.Add(sym, 1)
		if err != nil {
			return err
		}
		if s.set.POR {
			sleep = sleep.Add(sym)
		}
	}
	return nil
}

// closeExt materializes the successor configuration that extends c by ext
// and closes with the response's input, claimed by resIdx; stEnd is the
// chain's end state after the closing append and carry the sleep set the
// successor carries into the next response. The successor's digest is
// computed over its final content (behavDig) — the search-path digest
// only served the visited set.
func (s *Session) closeExt(c *cfg, ext []trace.Sym, extOuts []trace.Value,
	stEnd adt.State, dig trace.Digest, asym trace.Sym, a trace.Action, resIdx int,
	carry check.SleepSet) *cfg {

	n := len(c.syms) + len(ext) + 1
	syms := make([]trace.Sym, 0, n)
	syms = append(append(append(syms, c.syms...), ext...), asym)
	outs := make([]trace.Value, 0, n)
	outs = append(append(append(outs, c.outs...), extOuts...), a.Output)
	used := s.getUsed(n)
	copy(used, c.used)
	for i := len(c.used); i < n; i++ {
		used[i] = false
	}
	used[n-1] = true
	elems := c.elems.Clone()
	for _, sym := range ext {
		elems.Add(sym, 1)
	}
	elems.Add(asym, 1)
	abs := c.pre.Len() + n
	cf := s.newCfg()
	*cf = cfg{
		pre:   c.pre,
		syms:  syms,
		outs:  outs,
		used:  used,
		end:   stEnd,
		elems: elems,
		sleep: carry,
	}
	cf.dig = s.behavDig(cf)
	if s.set.Witness {
		cf.asn = &asnNode{prev: c.asn, res: resIdx, k: abs}
	}
	return cf
}

// behavDig computes c's behavioral identity digest from scratch: the
// chain's end state, the full-chain element multiset, and each retained
// suffix entry's (relative position, symbol, claim mark, output)
// components. Incremental maintainers (claim's mark flip) and the
// compaction re-key agree with it by construction.
func (s *Session) behavDig(c *cfg) trace.Digest {
	d := trace.HashString(string(c.end)).Add(c.elems.Digest())
	for k, sym := range c.syms {
		d = d.Add(trace.HashElem(k, sym, c.used[k]))
		d = d.Add(trace.HashOutput(k, s.in.Sym(c.outs[k])))
	}
	return d
}

// compactFrontier absorbs each new configuration's fully-claimed chain
// prefix (when at least compactMin long) into a shared ChainPrefix
// summary. Compaction changes representation AND identity: suffix
// positions shift, so the digest is recomputed over the retained
// content — after which configurations whose dropped prefixes ordered
// the same operations differently carry equal digests and merge at the
// next response's deduplication. The per-pass cache shares summaries
// between configurations compacting through an identical prefix (keyed
// by the prefix's order-sensitive content digest — summaries carry
// ordered values, so only truly identical prefixes may share; the
// same collision trust as the memo maps).
func (s *Session) compactFrontier(next []*cfg) {
	var cache map[trace.Digest]*trace.ChainPrefix
	for _, c := range next {
		run := 0
		for run < len(c.syms) && c.used[run] {
			run++
		}
		if run < compactMin {
			continue
		}
		if cache == nil {
			cache = map[trace.Digest]*trace.ChainPrefix{}
		}
		s.compactCfg(c, run, cache)
	}
}

// compactCfg drops c's first run (all claimed) suffix entries into a
// summary cumulative with any prior one. The retained suffix is copied
// into right-sized arrays so the dropped storage is actually released —
// re-slicing would pin the old backing arrays and void the memory bound.
func (s *Session) compactCfg(c *cfg, run int, cache map[trace.Digest]*trace.ChainPrefix) {
	preN := c.pre.Len()
	var pd trace.Digest
	if c.pre != nil {
		pd = c.pre.Dig
	}
	for i := 0; i < run; i++ {
		pd = pd.Add(trace.HashElem(preN+i, c.syms[i], true))
		pd = pd.Add(trace.HashOutput(preN+i, s.in.Sym(c.outs[i])))
	}
	pre, ok := cache[pd]
	if !ok {
		var vals []trace.Value
		if s.set.Witness {
			vals = make([]trace.Value, 0, preN+run)
			if c.pre != nil {
				vals = append(vals, c.pre.Vals...)
			}
			for i := 0; i < run; i++ {
				vals = append(vals, s.in.Value(c.syms[i]))
			}
		}
		pre = &trace.ChainPrefix{N: preN + run, Dig: pd, Vals: vals}
		cache[pd] = pre
	}
	// elems counts the full chain and stays exact across compaction; only
	// the stored suffix (and with it the identity digest) changes.
	c.pre = pre
	c.syms = append([]trace.Sym(nil), c.syms[run:]...)
	c.outs = append([]trace.Value(nil), c.outs[run:]...)
	nu := s.getUsed(len(c.used) - run)
	copy(nu, c.used[run:])
	if s.pooled && len(s.usedPool) < maxPool {
		s.usedPool = append(s.usedPool, c.used)
	}
	c.used = nu
	c.dig = s.behavDig(c)
}

// dedupFrontier merges frontier entries whose digests coincided after
// compaction re-keyed them, in place and order-preserving. Carried
// sleep sets intersect exactly as ExpandFrontier's merge does; the
// duplicates recycle.
func (s *Session) dedupFrontier(next []*cfg) []*cfg {
	seen := make(map[trace.Digest]int, len(next))
	out := next[:0]
	for _, c := range next {
		if i, dup := seen[c.dig]; dup {
			if s.dagSleep {
				out[i].sleep = out[i].sleep.Intersect(c.sleep)
			}
			s.putCfg(c)
			continue
		}
		seen[c.dig] = len(out)
		out = append(out, c)
	}
	return out
}

// newCfg returns a zeroed configuration struct, recycled when pooled.
func (s *Session) newCfg() *cfg {
	if n := len(s.cfgPool); n > 0 {
		c := s.cfgPool[n-1]
		s.cfgPool = s.cfgPool[:n-1]
		return c
	}
	return new(cfg)
}

// getUsed returns a mark slice of length n with unspecified contents
// (callers fully initialize it), recycled from the pool when one with
// sufficient capacity is near the top.
func (s *Session) getUsed(n int) []bool {
	if s.pooled {
		stop := len(s.usedPool) - 4
		for i := len(s.usedPool) - 1; i >= 0 && i >= stop; i-- {
			if cap(s.usedPool[i]) >= n {
				u := s.usedPool[i][:n]
				last := len(s.usedPool) - 1
				s.usedPool[i] = s.usedPool[last]
				s.usedPool = s.usedPool[:last]
				return u
			}
		}
	}
	return make([]bool, n)
}

// putCfg retires a configuration: its struct and mark slice return to
// the session pools (never its chain arrays or element counts, which
// successors may share). No-op for parallel sessions — the pools are
// single-threaded caches.
func (s *Session) putCfg(c *cfg) {
	if !s.pooled {
		return
	}
	if c.used != nil && len(s.usedPool) < maxPool {
		s.usedPool = append(s.usedPool, c.used)
	}
	if len(s.cfgPool) < maxPool {
		*c = cfg{}
		s.cfgPool = append(s.cfgPool, c)
	}
}

// checkStreaming is the breadth-engine one-shot path of Check
// (WithWorkers(n > 1)): it feeds the whole trace through a Session.
func checkStreaming(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, error) {
	s := newSessionSettings(ctx, f, set)
	if err := s.FeedAll(t); err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	return s.Result()
}
