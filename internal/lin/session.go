package lin

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// Session is an incremental linearizability checker (checker API v2,
// DESIGN.md decision 11): actions are fed one at a time, and a growing
// trace is re-checked in time proportional to the new actions instead of
// from scratch.
//
// The engine maintains the breadth counterpart of Check's depth-first
// search: the frontier of all reachable search configurations — commit
// chains with their claimed-prefix marks, interned and deduplicated by
// their incremental 128-bit digests — after the actions fed so far.
// Because the per-action transition relation of the search never looks
// ahead in the trace, the frontier after k actions is independent of the
// future, so Feed advances it in place:
//
//   - an invocation only extends the invoked-inputs multiset (every
//     configuration's availability is derived from it);
//   - a response replaces the frontier by its successor set: each
//     configuration either has the response claim an unused chain prefix
//     or extends the chain through available inputs, exactly Check's
//     branch set, deduplicated across configurations.
//
// The fed trace is linearizable iff the frontier is non-empty, and a
// NotLinearizable verdict is final: no continuation can revive an empty
// frontier. Verdicts therefore provably agree with one-shot Check on
// every prefix (the session property tests assert this on randomized
// traces).
//
// One budget (check.WithBudget) spans the whole session, spent with the
// same per-step granularity as Check; check.WithMemoLimit bounds the
// frontier size (exceeding it returns ErrMemo — frontier configurations
// are live state and cannot be dropped soundly). check.WithWorkers(n > 1)
// expands each response's frontier on n workers over a sharded
// deduplication set. Errors (budget, memo limit, context cancellation,
// non-sig actions) are terminal: the session sticks to the error and
// reports verdict Unknown.
//
// A Session is not safe for concurrent use by multiple goroutines (its
// workers parallelize internally).
type Session struct {
	ctx    context.Context
	f      adt.Folder
	set    check.Settings
	budget int

	in      *trace.Interner
	invoked trace.SymMultiset
	pending map[trace.ClientID]pendingInv

	frontier []*cfg
	nodes    atomic.Int64
	// pruned counts extension branches the sleep-set reduction skipped
	// (check.WithPOR; atomic because expansion workers prune
	// concurrently).
	pruned atomic.Int64
	fed    int

	err   error  // terminal error, sticky
	notWF string // non-empty once the fed trace went ill-formed, sticky

	// fast, when non-nil, is the ADT-specialized streaming core the
	// session delegates to instead of the frontier engine (DESIGN.md,
	// decision 15; NewSessionFast). The fed trace is recorded in rec so
	// that a fragment exit can fall back by replaying it through a fresh
	// exact session — after which the session is indistinguishable from
	// an exact one fed the same actions (frontier, budget spend and
	// verdicts included). Fast-path work never spends the budget; it is
	// accounted separately in fastNodes (one per fed action).
	fast      FastChecker
	fastRej   bool // core rejected: NotLinearizable, final
	fastNodes int
	rec       trace.Trace
}

type pendingInv struct {
	pending bool
	input   trace.Value
	// idx is the invocation's trace index; maintained (and used) only by
	// the fast-path delegate.
	idx int
}

// cfg is one frontier configuration: a commit-history chain with its
// claimed-prefix marks. Configurations are immutable once constructed —
// successors copy what they change and share the rest — and are
// identified by the same (position, symbol, claimed)-digest as Check's
// chain, which (together with the session-global invoked multiset)
// determines the derived availability multiset too.
type cfg struct {
	syms  []trace.Sym
	outs  []trace.Value
	used  []bool
	end   adt.State
	elems trace.SymMultiset
	dig   trace.Digest
	// asn is the assignment trail (response index -> claimed prefix
	// length) that produced this configuration, for witness assembly.
	asn *asnNode
}

type asnNode struct {
	prev *asnNode
	res  int
	k    int
}

// NewSession starts an incremental check of an initially empty trace
// against ADT f. See Session for the engine and option semantics.
func NewSession(ctx context.Context, f adt.Folder, opts ...check.Option) *Session {
	return newSessionSettings(ctx, f, check.NewSettings(opts...))
}

// NewSessionFast is NewSession with fast-path dispatch (DESIGN.md,
// decision 15): when folder f has a streaming specialized core
// (register, consensus) and check.WithExact was not requested, Feed
// costs O(1) amortized per action instead of a frontier expansion, and
// no budget is spent while the trace stays inside the core's fragment
// (Nodes then counts fed actions). The first action outside the
// fragment falls back transparently: the recorded trace is replayed
// through the exact frontier engine — spending budget as an exact
// session would — and the session continues exactly. Verdicts agree
// with NewSession on every prefix either way.
func NewSessionFast(ctx context.Context, f adt.Folder, opts ...check.Option) *Session {
	set := check.NewSettings(opts...)
	s := newSessionSettings(ctx, f, set)
	if !set.Exact {
		s.fast = NewFastChecker(f)
	}
	return s
}

func newSessionSettings(ctx context.Context, f adt.Folder, set check.Settings) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{
		ctx:      ctx,
		f:        f,
		set:      set,
		budget:   set.BudgetOr(DefaultBudget),
		in:       trace.NewInterner(),
		pending:  map[trace.ClientID]pendingInv{},
		frontier: []*cfg{{end: f.Empty()}},
	}
}

// spend charges n search nodes against the session budget and polls the
// context at ctxPollMask boundaries. Safe for concurrent use by expansion
// workers.
func (s *Session) spend(n int) error {
	if n <= 0 {
		return nil
	}
	v := s.nodes.Add(int64(n))
	if v > int64(s.budget) {
		return ErrBudget
	}
	if v&ctxPollMask < int64(n) {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of actions fed so far.
func (s *Session) Len() int { return s.fed }

// Nodes returns the cumulative number of search nodes spent, plus — for
// fast-path sessions — one node per action the specialized core
// processed (fast-path nodes are not charged against the budget).
func (s *Session) Nodes() int { return int(s.nodes.Load()) + s.fastNodes }

// Pruned returns the cumulative number of extension branches the
// partial-order reduction skipped (0 with check.WithPOR(false)).
func (s *Session) Pruned() int { return int(s.pruned.Load()) }

// Feed appends action a to the trace under check and advances the
// frontier. The returned error is terminal (budget or memo exhaustion,
// context cancellation, an action outside sig_T fed as a switch is
// instead treated as ill-formedness, matching Check); ill-formed traces
// yield a NotLinearizable verdict, not an error.
func (s *Session) Feed(a trace.Action) error {
	if s.err != nil {
		return s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return err
	}
	if s.fast != nil {
		return s.feedFast(a)
	}
	idx := s.fed
	s.fed++
	if s.notWF != "" {
		return nil // verdict already final
	}
	switch a.Kind {
	case trace.Inv:
		st := s.pending[a.Client]
		if st.pending {
			s.notWF = "trace is not well-formed"
			return nil
		}
		s.pending[a.Client] = pendingInv{pending: true, input: a.Input}
		s.invoked.Add(s.in.Sym(a.Input), 1)
		if err := s.spend(len(s.frontier)); err != nil {
			s.err = err
			return err
		}
	case trace.Res:
		st := s.pending[a.Client]
		if !st.pending || st.input != a.Input {
			s.notWF = "trace is not well-formed"
			return nil
		}
		s.pending[a.Client] = pendingInv{}
		if err := s.expand(a, idx); err != nil {
			s.err = err
			return err
		}
	default:
		// Switch actions do not belong to sig_T; Check classifies such
		// traces as ill-formed.
		s.notWF = "trace is not well-formed"
	}
	return nil
}

// feedFast is Feed's fast-path delegate: the same well-formedness
// bookkeeping as the frontier path, with the core deciding the verdict
// and FastExit triggering the fallback replay. A rejected (or
// ill-formed) verdict is final, but subsequent actions still maintain
// the well-formedness state so reasons keep matching the exact session.
func (s *Session) feedFast(a trace.Action) error {
	idx := s.fed
	s.fed++
	s.rec = append(s.rec, a)
	if s.notWF != "" {
		return nil // verdict already final
	}
	switch a.Kind {
	case trace.Inv:
		st := s.pending[a.Client]
		if st.pending {
			s.notWF = "trace is not well-formed"
			return nil
		}
		if !s.fastRej {
			switch s.fast.Inv(a.Input, idx) {
			case FastExit:
				return s.fastFallback()
			case FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.pending[a.Client] = pendingInv{pending: true, input: a.Input, idx: idx}
	case trace.Res:
		st := s.pending[a.Client]
		if !st.pending || st.input != a.Input {
			s.notWF = "trace is not well-formed"
			return nil
		}
		if !s.fastRej {
			switch s.fast.Res(a.Input, a.Output, st.idx, idx) {
			case FastExit:
				return s.fastFallback()
			case FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.pending[a.Client] = pendingInv{}
	default:
		// Switch actions do not belong to sig_T; Check classifies such
		// traces as ill-formed.
		s.notWF = "trace is not well-formed"
	}
	return nil
}

// fastFallback replays the recorded trace through a fresh exact session
// and adopts its entire state, so every later Feed (and the current
// verdict) behaves as if the session had been exact from the start. The
// replay spends budget from zero, exactly as an exact session fed the
// same actions would have.
func (s *Session) fastFallback() error {
	rec := s.rec
	s.fast, s.rec = nil, nil
	ex := newSessionSettings(s.ctx, s.f, s.set)
	err := ex.FeedAll(rec)
	s.in = ex.in
	s.invoked = ex.invoked
	s.pending = ex.pending
	s.frontier = ex.frontier
	s.nodes.Store(ex.nodes.Load())
	s.pruned.Store(ex.pruned.Load())
	s.fed = ex.fed
	s.err = ex.err
	s.notWF = ex.notWF
	return err
}

// FeedAll feeds every action of t in order, stopping at the first
// terminal error.
func (s *Session) FeedAll(t trace.Trace) error {
	for _, a := range t {
		if err := s.Feed(a); err != nil {
			return err
		}
	}
	return nil
}

// Verdict reports the current three-valued verdict for the trace fed so
// far: Unknown after a terminal error, otherwise Linearizable iff the
// frontier is non-empty and the trace is well-formed.
func (s *Session) Verdict() check.Verdict {
	switch {
	case s.err != nil:
		return check.Unknown
	case s.notWF != "":
		return check.NotLinearizable
	case s.fast != nil:
		if s.fastRej {
			return check.NotLinearizable
		}
		return check.Linearizable
	case len(s.frontier) == 0:
		return check.NotLinearizable
	default:
		return check.Linearizable
	}
}

// Result returns the verdict for the trace fed so far in Check's Result
// form (with a witness on positive verdicts unless WithWitness(false)),
// or the session's terminal error.
func (s *Session) Result() (Result, error) {
	if s.err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, s.err
	}
	if s.notWF != "" {
		return Result{OK: false, Reason: s.notWF, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	if s.fast != nil {
		if s.fastRej {
			return Result{OK: false, Reason: "no linearization function exists", Nodes: s.Nodes()}, nil
		}
		r := Result{OK: true, Nodes: s.Nodes()}
		if s.set.Witness {
			r.Witness = s.fast.Witness()
		}
		return r, nil
	}
	if len(s.frontier) == 0 {
		return Result{OK: false, Reason: "no linearization function exists", Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	r := Result{OK: true, Nodes: s.Nodes(), Pruned: s.Pruned()}
	if s.set.Witness {
		r.Witness = s.witness(s.frontier[0])
	}
	return r, nil
}

// witness reconstructs the linearization function of one surviving
// configuration: its chain is the maximal commit history, and the
// assignment trail maps each response index to its claimed prefix length.
func (s *Session) witness(c *cfg) Witness {
	hist := make(trace.History, len(c.syms))
	for i, sym := range c.syms {
		hist[i] = s.in.Value(sym)
	}
	w := Witness{}
	for n := c.asn; n != nil; n = n.prev {
		w[n.res] = hist[:n.k].Clone()
	}
	return w
}

// expand replaces the frontier by its successor set under response a.
func (s *Session) expand(a trace.Action, resIdx int) error {
	asym := s.in.Sym(a.Input)
	next, err := check.ExpandFrontier(s.ctx, s.frontier, s.set, s.spend,
		func(c *cfg) trace.Digest { return c.dig },
		func(c *cfg, emit func(*cfg)) error {
			return s.expandCfg(c, a, asym, resIdx, emit)
		})
	if err != nil {
		if errors.Is(err, check.ErrFrontierLimit) {
			return ErrMemo
		}
		return err
	}
	s.frontier = next
	return nil
}

// expandCfg emits every successor of configuration c under response a:
// claims of matching unused prefix lengths, plus every chain extension
// through available inputs that closes with the response's own input —
// exactly the branch set of the depth-first commit handler, enumerated
// exhaustively instead of short-circuiting on the first success.
func (s *Session) expandCfg(c *cfg, a trace.Action, asym trace.Sym, resIdx int, emit func(*cfg)) error {
	// Option 1: claim an existing unused prefix length.
	for k, sym := range c.syms {
		if !c.used[k] && sym == asym && c.outs[k] == a.Output {
			emit(s.claim(c, k, resIdx))
		}
	}
	// Option 2: extend the chain with fresh inputs from the derived
	// availability multiset (invoked inputs minus chain elements), the
	// last being the response's own input.
	avail := s.invoked.Clone()
	avail.SubtractAll(&c.elems)
	if avail.Size() == 0 {
		return nil
	}
	visited := make(map[trace.Digest]struct{}, 8)
	return s.extend(c, a, asym, resIdx, &avail, visited, nil, nil, c.end, c.dig, check.SleepSet{}, emit)
}

// claim returns c with prefix length k+1 marked claimed by resIdx.
func (s *Session) claim(c *cfg, k, resIdx int) *cfg {
	used := append([]bool(nil), c.used...)
	used[k] = true
	return &cfg{
		syms:  c.syms,
		outs:  c.outs,
		used:  used,
		end:   c.end,
		elems: c.elems,
		dig:   c.dig.Sub(trace.HashElem(k, c.syms[k], false)).Add(trace.HashElem(k, c.syms[k], true)),
		asn:   &asnNode{prev: c.asn, res: resIdx, k: k + 1},
	}
}

// extend explores chain extensions of c drawn from avail, emitting a
// successor whenever the extension can close with the response's input.
// ext/extOuts are the appended symbols and their outputs along the
// current search path (shared backing across siblings is safe: emit
// snapshots copy them); st and dig track the extended chain's end state
// and digest. visited prunes permutations reaching identical extended
// chains, mirroring the depth-first engine's per-response visited set
// (the availability is derived from the chain, so the chain digest alone
// identifies the configuration).
//
// sleep carries the sleep set of the partial-order reduction exactly as
// in the depth-first engine (DESIGN.md, decision 12): a pruned successor
// always has an emitted permutation-equivalent successor whose future
// behaviour maps one-to-one, so frontier emptiness — the session's
// verdict — is preserved.
func (s *Session) extend(c *cfg, a trace.Action, asym trace.Sym, resIdx int,
	avail *trace.SymMultiset, visited map[trace.Digest]struct{},
	ext []trace.Sym, extOuts []trace.Value, st adt.State, dig trace.Digest,
	sleep check.SleepSet, emit func(*cfg)) error {

	if err := s.spend(1); err != nil {
		return err
	}
	if _, hit := visited[dig]; hit {
		return nil
	}
	visited[dig] = struct{}{}

	// Close: append the response's own input as a claimed element.
	if avail.Count(asym) > 0 && s.f.Out(st, a.Input) == a.Output {
		emit(s.closeExt(c, ext, extOuts, st, dig, asym, a, resIdx))
	}
	// Continue: append any available input as an intermediate element.
	for sym := trace.Sym(0); int(sym) < avail.NumSyms(); sym++ {
		if avail.Count(sym) <= 0 {
			continue
		}
		if s.set.POR && sleep.Has(sym) {
			s.pruned.Add(1)
			continue
		}
		in := s.in.Value(sym)
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.set.POR {
			childSleep = sleep.FilterIndependent(s.f, s.in, st, in, stIn, outIn)
		}
		avail.Add(sym, -1)
		pos := len(c.syms) + len(ext)
		err := s.extend(c, a, asym, resIdx, avail, visited,
			append(ext, sym), append(extOuts, outIn),
			stIn, dig.Add(trace.HashElem(pos, sym, false)), childSleep, emit)
		avail.Add(sym, 1)
		if err != nil {
			return err
		}
		if s.set.POR {
			sleep = sleep.Add(sym)
		}
	}
	return nil
}

// closeExt materializes the successor configuration that extends c by ext
// and closes with the response's input, claimed by resIdx.
func (s *Session) closeExt(c *cfg, ext []trace.Sym, extOuts []trace.Value,
	st adt.State, dig trace.Digest, asym trace.Sym, a trace.Action, resIdx int) *cfg {

	n := len(c.syms) + len(ext) + 1
	syms := make([]trace.Sym, 0, n)
	syms = append(append(append(syms, c.syms...), ext...), asym)
	outs := make([]trace.Value, 0, n)
	outs = append(append(append(outs, c.outs...), extOuts...), a.Output)
	used := make([]bool, n)
	copy(used, c.used)
	used[n-1] = true
	elems := c.elems.Clone()
	for _, sym := range ext {
		elems.Add(sym, 1)
	}
	elems.Add(asym, 1)
	return &cfg{
		syms:  syms,
		outs:  outs,
		used:  used,
		end:   s.f.Step(st, a.Input),
		elems: elems,
		dig:   dig.Add(trace.HashElem(n-1, asym, true)),
		asn:   &asnNode{prev: c.asn, res: resIdx, k: n},
	}
}

// checkStreaming is the breadth-engine one-shot path of Check
// (WithWorkers(n > 1)): it feeds the whole trace through a Session.
func checkStreaming(ctx context.Context, f adt.Folder, t trace.Trace, set check.Settings) (Result, error) {
	s := newSessionSettings(ctx, f, set)
	if err := s.FeedAll(t); err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	return s.Result()
}
