// Package workload generates random traces, schedules and command
// streams for the checker experiments: well-formed concurrent traces
// that are linearizable by construction (operations take effect at a
// chosen commit point between invocation and response), optionally
// corrupted variants, speculative consensus phase traces in the shape
// of the paper's case studies, and the SMR-side workloads — Keyed
// builds single-key KV command streams (uniform or zipf-skewed keys)
// for the sharded cluster, and Mixed extends them with multi-key
// MultiPut/MultiGet/CAS transactions drawn within key-groups for the
// transaction layer (E12/E19). All generators are deterministic under
// a caller-supplied rand source.
package workload

import (
	"math/rand"
	"strconv"

	"repro/internal/adt"
	"repro/internal/trace"
)

// TraceOpts configures random trace generation.
type TraceOpts struct {
	// Clients is the number of concurrent clients (default 3).
	Clients int
	// Ops is the number of operations to attempt (default 6).
	Ops int
	// Inputs is the pool of ADT inputs to draw from; required.
	Inputs []trace.Value
	// PendingProb is the probability that an invoked operation never
	// responds (stays pending).
	PendingProb float64
	// CorruptProb is the probability that a response's output is replaced
	// with a plausible-but-possibly-wrong output, generally destroying
	// linearizability.
	CorruptProb float64
	// UniqueTags attaches a distinct occurrence tag to every invocation.
	// The paper's new linearizability definition coincides with the
	// classical one exactly on unique-input traces (see the repeated-
	// events divergence finding in EXPERIMENTS.md), so the equivalence
	// experiment E8 sets this.
	UniqueTags bool
}

func (o TraceOpts) withDefaults() TraceOpts {
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.Ops <= 0 {
		o.Ops = 6
	}
	return o
}

// Random generates a well-formed trace of f. Operations linearize at a
// random commit point between invocation and response, so with
// CorruptProb == 0 the result is linearizable by construction.
func Random(f adt.Folder, r *rand.Rand, opts TraceOpts) trace.Trace {
	opts = opts.withDefaults()
	type clientState struct {
		pending   bool
		committed bool
		input     trace.Value
		output    trace.Value
	}
	states := make([]clientState, opts.Clients)
	var t trace.Trace
	st := f.Empty()
	invoked := 0

	clientID := func(i int) trace.ClientID {
		return trace.ClientID("c" + string(rune('1'+i%9)) + string(rune('a'+i/9)))
	}

	for guard := 0; guard < opts.Ops*20; guard++ {
		// Collect enabled moves: invoke, commit, respond.
		type move struct{ kind, client int }
		var moves []move
		for c := range states {
			switch {
			case !states[c].pending && invoked < opts.Ops:
				moves = append(moves, move{0, c})
			case states[c].pending && !states[c].committed:
				moves = append(moves, move{1, c})
			case states[c].pending && states[c].committed:
				moves = append(moves, move{2, c})
			}
		}
		if len(moves) == 0 {
			break
		}
		mv := moves[r.Intn(len(moves))]
		c := mv.client
		switch mv.kind {
		case 0: // invoke
			in := opts.Inputs[r.Intn(len(opts.Inputs))]
			if opts.UniqueTags {
				in = adt.Tag(in, strconv.Itoa(invoked))
			}
			states[c] = clientState{pending: true, input: in}
			t = append(t, trace.Invoke(clientID(c), 1, in))
			invoked++
		case 1: // commit: the operation takes effect now
			states[c].committed = true
			states[c].output = f.Out(st, states[c].input)
			st = f.Step(st, states[c].input)
		case 2: // respond
			out := states[c].output
			if r.Float64() < opts.CorruptProb {
				out = corruptOutput(f, r, opts, out)
			}
			t = append(t, trace.Response(clientID(c), 1, states[c].input, out))
			states[c] = clientState{}
		}
	}
	// Leave a random subset of still-pending operations pending; respond
	// to the rest so traces end in varied shapes.
	for c := range states {
		if !states[c].pending {
			continue
		}
		if r.Float64() < opts.PendingProb {
			continue
		}
		if !states[c].committed {
			states[c].output = f.Out(st, states[c].input)
			st = f.Step(st, states[c].input)
		}
		out := states[c].output
		if r.Float64() < opts.CorruptProb {
			out = corruptOutput(f, r, opts, out)
		}
		t = append(t, trace.Response(clientID(c), 1, states[c].input, out))
	}
	return t
}

// corruptOutput produces a plausible wrong output: the output of a random
// input applied at a random earlier point of the committed state's
// evolution, or at the empty state.
func corruptOutput(f adt.Folder, r *rand.Rand, opts TraceOpts, out trace.Value) trace.Value {
	in := opts.Inputs[r.Intn(len(opts.Inputs))]
	st := f.Empty()
	for i, n := 0, r.Intn(3); i < n; i++ {
		st = f.Step(st, opts.Inputs[r.Intn(len(opts.Inputs))])
	}
	alt := f.Out(st, in)
	if alt == out {
		return f.Out(f.Empty(), in) // last resort; may still coincide
	}
	return alt
}

// SplitDecision builds the canonical hard exhaustive workload: w
// concurrent tagged proposals answered by alternating split decisions.
// The trace is never linearizable, so exact checkers exhaust their full
// memoized DAGs on it (deterministic node counts), and after the first
// chain element every remaining proposal commutes — making it both the
// throughput workload of BENCH_1 and the best case of the E13
// partial-order reduction. clientPrefix names the clients ("h" yields
// h0, h1, ...).
func SplitDecision(w int, clientPrefix string) trace.Trace {
	var t trace.Trace
	for i := 0; i < w; i++ {
		c := trace.ClientID(clientPrefix + strconv.Itoa(i))
		t = append(t, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))))
	}
	for i := 0; i < w; i++ {
		c := trace.ClientID(clientPrefix + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))
		t = append(t, trace.Response(c, 1, in, adt.DecideOutput("v"+strconv.Itoa(i%2))))
	}
	return t
}
