package workload

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
)

func TestRandomWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
	for i := 0; i < 200; i++ {
		tr := Random(adt.Consensus{}, r, TraceOpts{Inputs: inputs, PendingProb: 0.3})
		if !tr.WellFormed() {
			t.Fatalf("ill-formed generated trace: %v", tr)
		}
	}
}

func TestRandomUniqueTags(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	inputs := []trace.Value{adt.IncInput(), adt.GetInput()}
	tr := Random(adt.Counter{}, r, TraceOpts{Ops: 8, Inputs: inputs, UniqueTags: true})
	seen := map[trace.Value]bool{}
	for _, a := range tr {
		if a.Kind != trace.Inv {
			continue
		}
		if seen[a.Input] {
			t.Fatalf("duplicate tagged input %q", a.Input)
		}
		seen[a.Input] = true
		if adt.Untag(a.Input) == a.Input {
			t.Fatalf("input %q not tagged", a.Input)
		}
	}
}

func TestFirstPhaseShapes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sawSwitch, sawDecide := false, false
	for i := 0; i < 200; i++ {
		tr := FirstPhase(r, PhaseOpts{})
		if !tr.PhaseWellFormed(1, 2) {
			t.Fatalf("ill-formed phase trace: %v", tr)
		}
		for _, a := range tr {
			if a.IsAbort(2) {
				sawSwitch = true
			}
			if a.IsRes() {
				sawDecide = true
			}
		}
	}
	if !sawSwitch || !sawDecide {
		t.Fatalf("generator not exercising both outcomes: switch=%v decide=%v", sawSwitch, sawDecide)
	}
}

func TestFirstPhaseNoLateOps(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		tr := FirstPhase(r, PhaseOpts{NoLateOps: true})
		switched := false
		for _, a := range tr {
			if a.IsAbort(2) {
				switched = true
			}
			if a.Kind == trace.Inv && switched {
				t.Fatalf("invocation after switch despite NoLateOps: %v", tr)
			}
		}
	}
}

func TestSecondPhaseShapes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tr := SecondPhase(r, 2, PhaseOpts{})
		if !tr.PhaseWellFormed(2, 3) {
			t.Fatalf("ill-formed second-phase trace: %v", tr)
		}
	}
}
