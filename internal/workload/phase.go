package workload

import (
	"math/rand"

	"repro/internal/adt"
	"repro/internal/trace"
)

// PhaseOpts configures random speculative consensus phase traces.
type PhaseOpts struct {
	// Clients is the number of clients (default 3).
	Clients int
	// Values is the pool of consensus values (default a,b,c).
	Values []trace.Value
	// SwitchProb is the probability a pending client switches instead of
	// deciding (default 0.4).
	SwitchProb float64
	// ViolateProb is the probability of injecting an invariant violation
	// (wrong decision or wrong switch value).
	ViolateProb float64
	// NoLateOps, when true, stops invoking new operations once any client
	// has switched — the schedule family on which the paper's Quorum
	// satisfies the literal Abort-Order (see slin.Options).
	NoLateOps bool
}

func (o PhaseOpts) withDefaults() PhaseOpts {
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if len(o.Values) == 0 {
		o.Values = []trace.Value{"a", "b", "c"}
	}
	if o.SwitchProb == 0 {
		o.SwitchProb = 0.4
	}
	return o
}

// FirstPhase generates a consensus first-phase trace in sig(1,2) in the
// shape of Quorum's abstract behavior: a winner value is fixed by the
// first effect; deciders decide it; switchers switch with it (after a
// decision exists) or with their own proposal (contention, before any
// decision). With ViolateProb == 0 the trace satisfies invariants I1–I3.
func FirstPhase(r *rand.Rand, opts PhaseOpts) trace.Trace {
	opts = opts.withDefaults()
	type clientState struct {
		pending bool
		done    bool
		value   trace.Value
		input   trace.Value
	}
	states := make([]clientState, opts.Clients)
	var t trace.Trace
	winner := trace.Value("")
	decided := false
	switched := false
	// poisoned models Quorum's conflict case: once any client switches
	// with its own (non-winner) proposal, servers disagree on the first
	// value and no client can ever decide (I1 would otherwise break).
	poisoned := false
	invoked := 0

	clientID := func(i int) trace.ClientID { return trace.ClientID("q" + string(rune('1'+i))) }

	for guard := 0; guard < opts.Clients*10; guard++ {
		type move struct{ kind, client int }
		var moves []move
		for c := range states {
			if !states[c].pending && !states[c].done && invoked < opts.Clients &&
				!(opts.NoLateOps && switched) {
				moves = append(moves, move{0, c})
			}
			if states[c].pending {
				moves = append(moves, move{1, c})
			}
		}
		if len(moves) == 0 {
			break
		}
		mv := moves[r.Intn(len(moves))]
		c := mv.client
		switch mv.kind {
		case 0:
			v := opts.Values[r.Intn(len(opts.Values))]
			in := adt.Tag(adt.ProposeInput(v), string(clientID(c)))
			states[c] = clientState{pending: true, value: v, input: in}
			t = append(t, trace.Invoke(clientID(c), 1, in))
			invoked++
		case 1:
			in := states[c].input
			if winner == "" {
				winner = states[c].value
			}
			if poisoned || r.Float64() < opts.SwitchProb {
				sv := winner
				if !decided && r.Float64() < 0.5 {
					sv = states[c].value // contention switch with own proposal
					if sv != winner {
						poisoned = true
					}
				}
				if r.Float64() < opts.ViolateProb {
					sv = "viol-" + sv
				}
				t = append(t, trace.Switch(clientID(c), 2, in, sv))
				switched = true
				states[c] = clientState{done: true} // aborted clients leave the phase
			} else {
				dv := winner
				if r.Float64() < opts.ViolateProb {
					dv = states[c].value // may split the decision
				}
				t = append(t, trace.Response(clientID(c), 1, in, adt.DecideOutput(dv)))
				decided = true
				states[c] = clientState{}
			}
		}
	}
	return t
}

// SecondPhase generates a consensus second-phase trace in sig(m, m+1) in
// the shape of Backup's abstract behavior: clients switch in with values,
// and all deciders decide a common previously submitted value. With
// ViolateProb == 0 the trace satisfies invariants I4–I5.
func SecondPhase(r *rand.Rand, m int, opts PhaseOpts) trace.Trace {
	opts = opts.withDefaults()
	var t trace.Trace
	clientID := func(i int) trace.ClientID { return trace.ClientID("b" + string(rune('1'+i))) }

	// Every client switches in first (possibly interleaved), then decides.
	type clientState struct {
		in      trace.Value
		sv      trace.Value
		entered bool
		done    bool
	}
	states := make([]clientState, opts.Clients)
	for c := range states {
		states[c].in = adt.Tag(adt.ProposeInput(opts.Values[r.Intn(len(opts.Values))]), string(clientID(c)))
		states[c].sv = opts.Values[r.Intn(len(opts.Values))]
	}
	decision := trace.Value("")
	for guard := 0; guard < opts.Clients*10; guard++ {
		type move struct{ kind, client int }
		var moves []move
		for c := range states {
			if !states[c].entered {
				moves = append(moves, move{0, c})
			} else if !states[c].done {
				moves = append(moves, move{1, c})
			}
		}
		if len(moves) == 0 {
			break
		}
		mv := moves[r.Intn(len(moves))]
		c := mv.client
		switch mv.kind {
		case 0:
			t = append(t, trace.Switch(clientID(c), m, states[c].in, states[c].sv))
			states[c].entered = true
			if decision == "" {
				decision = states[c].sv // first submitted value wins
			}
		case 1:
			dv := decision
			if r.Float64() < opts.ViolateProb {
				dv = "viol-" + dv
			}
			t = append(t, trace.Response(clientID(c), m, states[c].in, adt.DecideOutput(dv)))
			states[c].done = true
		}
	}
	return t
}
