package workload

import (
	"math/rand"
	"testing"
)

func TestKeyedDeterministicAndUnique(t *testing.T) {
	a := Keyed(rand.New(rand.NewSource(5)), KeyedOpts{Ops: 500, Keys: 32, ZipfS: 1.2})
	b := Keyed(rand.New(rand.NewSource(5)), KeyedOpts{Ops: 500, Keys: 32, ZipfS: 1.2})
	if len(a) != 500 {
		t.Fatalf("ops: %d", len(a))
	}
	values := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
		if values[a[i].Value] {
			t.Fatalf("duplicate value %q", a[i].Value)
		}
		values[a[i].Value] = true
	}
}

func TestKeyedClientBalance(t *testing.T) {
	ops := Keyed(rand.New(rand.NewSource(1)), KeyedOpts{Clients: 4, Ops: 400})
	counts := map[int]int{}
	for _, op := range ops {
		counts[op.Client]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 100 {
			t.Fatalf("client %d got %d/100 ops", c, counts[c])
		}
	}
}

func TestKeyedZipfSkewsAndUniformSpreads(t *testing.T) {
	const ops, keys = 20000, 64
	count := func(s float64) map[string]int {
		m := map[string]int{}
		for _, op := range Keyed(rand.New(rand.NewSource(7)), KeyedOpts{Ops: ops, Keys: keys, ZipfS: s}) {
			m[op.Key]++
		}
		return m
	}
	uni, skew := count(0), count(1.5)
	if len(uni) != keys {
		t.Fatalf("uniform hit %d/%d keys", len(uni), keys)
	}
	maxUni, maxSkew := 0, 0
	for _, n := range uni {
		if n > maxUni {
			maxUni = n
		}
	}
	for _, n := range skew {
		if n > maxSkew {
			maxSkew = n
		}
	}
	// Uniform: every key near ops/keys. Zipf: a dominant hot key.
	if maxUni > 3*ops/keys {
		t.Fatalf("uniform hottest key got %d ops (expected ~%d)", maxUni, ops/keys)
	}
	if maxSkew < 3*ops/keys {
		t.Fatalf("zipf hottest key got only %d ops", maxSkew)
	}
}

func TestKeyedReadFraction(t *testing.T) {
	ops := Keyed(rand.New(rand.NewSource(3)), KeyedOpts{Ops: 10000, ReadFrac: 0.5})
	reads := 0
	for _, op := range ops {
		if op.Read {
			reads++
		}
	}
	if reads < 4500 || reads > 5500 {
		t.Fatalf("reads %d/10000 with ReadFrac 0.5", reads)
	}
}
