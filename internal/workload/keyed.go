package workload

import (
	"math/rand"
	"strconv"
)

// KeyedOp is one operation of a keyed KV workload: a write of a unique
// value or a read, against a key drawn from a uniform or zipf-skewed
// distribution. The SMR experiments encode these as replicated-log
// commands (smr.SetCmd / smr.GetCmd) and hash-partition them by key.
type KeyedOp struct {
	// Client is the submitting client's index in [0, Clients).
	Client int
	// Key is the operated key ("k<i>").
	Key string
	// Read selects a read; otherwise the op writes Value.
	Read bool
	// Value is the written value, unique across the workload (replicated
	// logs need distinct entries), or the read's occurrence tag.
	Value string
}

// KeyedOpts configures Keyed.
type KeyedOpts struct {
	// Clients is the number of submitting clients (default 3).
	Clients int
	// Ops is the total number of operations (default 1000).
	Ops int
	// Keys is the number of distinct keys (default max(16, Ops/64), so
	// per-key histories stay short enough for the exact checker).
	Keys int
	// ReadFrac is the fraction of reads. Zero means the default (0.3);
	// pass a negative value for a pure-write workload.
	ReadFrac float64
	// ZipfS skews the key distribution with a zipf law of this exponent,
	// which must exceed 1 (rand.Zipf's domain; Keyed panics otherwise so
	// a skew request can never silently degrade to uniform). Zero draws
	// keys uniformly.
	ZipfS float64
}

func (o KeyedOpts) withDefaults() KeyedOpts {
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.Keys <= 0 {
		o.Keys = o.Ops / 64
		if o.Keys < 16 {
			o.Keys = 16
		}
	}
	if o.ReadFrac == 0 {
		o.ReadFrac = 0.3
	} else if o.ReadFrac < 0 {
		o.ReadFrac = 0
	}
	if o.ZipfS > 0 && o.ZipfS <= 1 {
		panic("workload: KeyedOpts.ZipfS must exceed 1 (zipf exponent); use 0 for uniform")
	}
	return o
}

// Keyed generates a keyed KV workload: Ops operations assigned
// round-robin to clients (every client gets an equal, interleaved
// share), each on a key drawn uniformly or zipf-skewed, a ReadFrac
// fraction of them reads. Write values and read tags are unique across
// the workload. The same seed reproduces the same workload.
func Keyed(r *rand.Rand, opts KeyedOpts) []KeyedOp {
	opts = opts.withDefaults()
	var zipf *rand.Zipf
	if opts.ZipfS > 0 {
		zipf = rand.NewZipf(r, opts.ZipfS, 1, uint64(opts.Keys-1))
	}
	ops := make([]KeyedOp, opts.Ops)
	for i := range ops {
		var k int
		if zipf != nil {
			k = int(zipf.Uint64())
		} else {
			k = r.Intn(opts.Keys)
		}
		ops[i] = KeyedOp{
			Client: i % opts.Clients,
			Key:    "k" + strconv.Itoa(k),
			Read:   r.Float64() < opts.ReadFrac,
			Value:  "v" + strconv.Itoa(i),
		}
	}
	return ops
}
