package workload

import (
	"math/rand"
	"strconv"
)

// TxnSpecOp is one operation of a generated transaction. Exactly one of
// Read, CAS, or neither (a plain write) applies.
type TxnSpecOp struct {
	Key string
	// Read selects a transactional read (MultiGet component).
	Read bool
	// CAS selects a compare-and-swap: write Value if the key currently
	// holds Expect ("" for "never written").
	CAS    bool
	Expect string
	// Value is the written value (write/CAS), unique across the workload.
	Value string
}

// TxnSpec is a generated multi-key transaction with a workload-unique ID.
type TxnSpec struct {
	ID  string
	Ops []TxnSpecOp
}

// MixedOp is one item of a mixed workload: the single-key operation
// described by the embedded KeyedOp, or — when Txn is non-nil — a
// multi-key transaction submitted by the same client.
type MixedOp struct {
	KeyedOp
	Txn *TxnSpec
}

// MixedOpts configures Mixed. The embedded KeyedOpts fields keep their
// meanings (Ops counts items — a transaction is one item).
type MixedOpts struct {
	KeyedOpts
	// TxnFrac is the fraction of items that are multi-key transactions
	// (zero: none — Mixed degenerates to Keyed).
	TxnFrac float64
	// TxnKeysMax bounds the keys per transaction: drawn uniformly in
	// [2, TxnKeysMax] (default 4, minimum 2).
	TxnKeysMax int
	// ReadTxnFrac and CASFrac split transactions into MultiGets,
	// CAS-style read-modify-writes, and MultiPuts (the remainder).
	// Defaults 0.3 and 0.3; pass a negative value for zero.
	ReadTxnFrac float64
	CASFrac     float64
	// TxnKeys restricts transaction key draws to the first TxnKeys keys
	// (default all Keys): the transactional "hot entities". Keys beyond
	// the range are only ever touched by single-key operations, so they
	// stay on the checker's per-key register fast path.
	TxnKeys int
	// Groups partitions the transactional key range into key-groups (key
	// k belongs to group k mod Groups) and draws each transaction's keys
	// within one group — modeling related-entity transactions, and
	// bounding how large a txn-connected component the checker must
	// merge. Zero or one puts every key in one group.
	Groups int
}

func (o MixedOpts) withDefaults() MixedOpts {
	o.KeyedOpts = o.KeyedOpts.withDefaults()
	if o.TxnKeysMax < 2 {
		o.TxnKeysMax = 4
	}
	o.ReadTxnFrac = fracDefault(o.ReadTxnFrac, 0.3)
	o.CASFrac = fracDefault(o.CASFrac, 0.3)
	if o.TxnKeys < 1 || o.TxnKeys > o.Keys {
		o.TxnKeys = o.Keys
	}
	if o.Groups < 1 {
		o.Groups = 1
	}
	if o.Groups > o.TxnKeys {
		o.Groups = o.TxnKeys
	}
	return o
}

func fracDefault(f, def float64) float64 {
	switch {
	case f == 0:
		return def
	case f < 0:
		return 0
	}
	return f
}

// Mixed generates a mixed single-key/transactional workload: Ops items
// assigned round-robin to clients, a TxnFrac fraction of them multi-key
// transactions of 2–TxnKeysMax distinct keys drawn within one key-group,
// the rest single-key operations exactly as Keyed generates them. CAS
// expectations are the key's most recently generated write value — often
// still current at execution time, so commit/abort rates reflect real
// interleaving rather than doomed guesses. Write values, read tags and
// transaction IDs are unique across the workload; the same seed
// reproduces the same workload.
func Mixed(r *rand.Rand, opts MixedOpts) []MixedOp {
	opts = opts.withDefaults()
	var zipf *rand.Zipf
	if opts.ZipfS > 0 {
		zipf = rand.NewZipf(r, opts.ZipfS, 1, uint64(opts.Keys-1))
	}
	drawKey := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return r.Intn(opts.Keys)
	}
	last := map[string]string{} // key -> most recently generated write value
	ops := make([]MixedOp, opts.Ops)
	for i := range ops {
		ops[i].Client = i % opts.Clients
		if r.Float64() >= opts.TxnFrac {
			k := "k" + strconv.Itoa(drawKey())
			v := "v" + strconv.Itoa(i)
			ops[i].Key, ops[i].Value = k, v
			ops[i].Read = r.Float64() < opts.ReadFrac
			if !ops[i].Read {
				last[k] = v
			}
			continue
		}
		// A transaction: distinct keys within the first key's group of
		// the transactional key range.
		group := drawKey() % opts.TxnKeys % opts.Groups
		groupSize := (opts.TxnKeys-group-1)/opts.Groups + 1
		nkeys := 2 + r.Intn(opts.TxnKeysMax-1)
		if nkeys > groupSize {
			nkeys = groupSize
		}
		keys := map[int]bool{}
		spec := &TxnSpec{ID: "x" + strconv.Itoa(i)}
		kind := r.Float64()
		for j := 0; len(spec.Ops) < nkeys; j++ {
			k := group + opts.Groups*r.Intn(groupSize)
			if keys[k] {
				continue
			}
			keys[k] = true
			key := "k" + strconv.Itoa(k)
			op := TxnSpecOp{Key: key}
			switch {
			case kind < opts.ReadTxnFrac:
				op.Read = true
			case kind < opts.ReadTxnFrac+opts.CASFrac:
				op.CAS = true
				op.Expect = last[key]
				op.Value = "v" + strconv.Itoa(i) + "." + strconv.Itoa(len(spec.Ops))
				last[key] = op.Value
			default:
				op.Value = "v" + strconv.Itoa(i) + "." + strconv.Itoa(len(spec.Ops))
				last[key] = op.Value
			}
			spec.Ops = append(spec.Ops, op)
		}
		ops[i].Txn = spec
	}
	return ops
}
