// Package core is the executable heart of the paper's framework: it
// composes independently devised speculation phases into a single
// linearizable object (§2.3, §5.1).
//
// A Phase is a black-box implementation of one speculation phase. Clients
// start in phase 1; a phase may resolve an operation either by returning a
// response or by switching the client — with a switch value and its
// pending input — to the next phase. Phases never share state: the switch
// value is the only information that crosses the boundary, enforced by
// construction because the Composer is the only connection between them.
//
// The Composer records the object-level trace (invocations, responses and
// switch actions, numbered as in §5.1) so that runs can be checked against
// LinT and SLinT by packages lin and slin.
package core

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// OutcomeKind says how a phase resolved an operation.
type OutcomeKind uint8

const (
	// Return means the phase produced a response for the client.
	Return OutcomeKind = iota
	// SwitchOut means the phase aborts the client's operation and passes
	// it to the next phase along with a switch value.
	SwitchOut
)

// Outcome is a phase's resolution of one client operation.
type Outcome struct {
	Kind OutcomeKind
	// Output is the ADT output; meaningful when Kind == Return.
	Output trace.Value
	// SwitchValue is the initialization value passed to the next phase;
	// meaningful when Kind == SwitchOut.
	SwitchValue trace.Value
}

// ReturnOutcome builds a Return outcome.
func ReturnOutcome(out trace.Value) Outcome { return Outcome{Kind: Return, Output: out} }

// SwitchOutcome builds a SwitchOut outcome.
func SwitchOutcome(v trace.Value) Outcome { return Outcome{Kind: SwitchOut, SwitchValue: v} }

// Phase is one speculation phase of a concurrent object. Implementations
// must be safe for concurrent use by multiple client goroutines.
//
// Invoke submits a fresh input from a client that already executes in this
// phase. SwitchIn delivers a pending input transferred from the previous
// phase together with its switch value (the phase's init action). Both may
// resolve the operation by returning or by switching onward.
type Phase interface {
	// Name identifies the phase in diagnostics.
	Name() string
	Invoke(c trace.ClientID, in trace.Value) (Outcome, error)
	SwitchIn(c trace.ClientID, in trace.Value, init trace.Value) (Outcome, error)
}

// Composer chains speculation phases 1..n into one concurrent object.
// Each client independently advances through the phases: once a client has
// entered phase k it never uses an earlier phase again (§5.1); no
// agreement between clients is needed to switch.
type Composer struct {
	phases []Phase
	rec    *Recorder

	mu  sync.Mutex
	cur map[trace.ClientID]int // index into phases; clients start at 0
}

// NewComposer builds an object from the given phases, in order. At least
// one phase is required; the last phase must never switch out (it is the
// robust backup).
func NewComposer(phases ...Phase) (*Composer, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("core: composer needs at least one phase")
	}
	return &Composer{
		phases: phases,
		rec:    NewRecorder(),
		cur:    map[trace.ClientID]int{},
	}, nil
}

// phaseIndex returns the phase the client currently executes in.
func (o *Composer) phaseIndex(c trace.ClientID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cur[c]
}

func (o *Composer) setPhaseIndex(c trace.ClientID, k int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if k > o.cur[c] {
		o.cur[c] = k
	}
}

// Invoke submits input in on behalf of client c and blocks until the
// composed object resolves it, possibly after the client switched through
// several phases. Clients are sequential: a client must not have two
// operations in flight.
func (o *Composer) Invoke(c trace.ClientID, in trace.Value) (trace.Value, error) {
	k := o.phaseIndex(c)
	o.rec.Record(trace.Invoke(c, k+1, in))
	out, err := o.phases[k].Invoke(c, in)
	if err != nil {
		return "", fmt.Errorf("core: phase %s: %w", o.phases[k].Name(), err)
	}
	for out.Kind == SwitchOut {
		// The switch action carries the number of the phase being
		// switched TO (§5.1's example numbers the abort of phase k as k+1).
		o.rec.Record(trace.Switch(c, k+2, in, out.SwitchValue))
		if k+1 >= len(o.phases) {
			return "", fmt.Errorf("core: last phase %s aborted operation %q of %s",
				o.phases[k].Name(), in, c)
		}
		k++
		out, err = o.phases[k].SwitchIn(c, in, out.SwitchValue)
		if err != nil {
			return "", fmt.Errorf("core: phase %s: %w", o.phases[k].Name(), err)
		}
	}
	o.setPhaseIndex(c, k)
	o.rec.Record(trace.Response(c, k+1, in, out.Output))
	return out.Output, nil
}

// Trace returns a snapshot of the object-level trace recorded so far.
func (o *Composer) Trace() trace.Trace { return o.rec.Trace() }

// Phases returns the number of composed phases.
func (o *Composer) Phases() int { return len(o.phases) }

// Recorder collects trace actions from concurrent clients. The zero value
// is not usable; call NewRecorder.
type Recorder struct {
	mu sync.Mutex
	t  trace.Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an action.
func (r *Recorder) Record(a trace.Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.t = append(r.t, a)
}

// Trace returns a snapshot of the recorded trace.
func (r *Recorder) Trace() trace.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Clone()
}

// Len returns the number of recorded actions.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.t)
}
