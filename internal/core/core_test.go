package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// scriptPhase resolves operations from a scripted table and records what
// it saw; safe for concurrent use.
type scriptPhase struct {
	name string
	mu   sync.Mutex
	// resolve maps input -> outcome; switchIn handles transferred ops.
	resolve  func(c trace.ClientID, in trace.Value) Outcome
	switchIn func(c trace.ClientID, in, init trace.Value) Outcome
	invokes  int
	switches int
}

func (p *scriptPhase) Name() string { return p.name }

func (p *scriptPhase) Invoke(c trace.ClientID, in trace.Value) (Outcome, error) {
	p.mu.Lock()
	p.invokes++
	p.mu.Unlock()
	return p.resolve(c, in), nil
}

func (p *scriptPhase) SwitchIn(c trace.ClientID, in, init trace.Value) (Outcome, error) {
	p.mu.Lock()
	p.switches++
	p.mu.Unlock()
	return p.switchIn(c, in, init), nil
}

func echoPhase(name string) *scriptPhase {
	return &scriptPhase{
		name:     name,
		resolve:  func(_ trace.ClientID, in trace.Value) Outcome { return ReturnOutcome("out:" + in) },
		switchIn: func(_ trace.ClientID, in, init trace.Value) Outcome { return ReturnOutcome("sw:" + init + ":" + in) },
	}
}

func TestComposerDirectReturn(t *testing.T) {
	p := echoPhase("fast")
	o, err := NewComposer(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Invoke("c1", "x")
	if err != nil {
		t.Fatal(err)
	}
	if out != "out:x" {
		t.Fatalf("output = %q", out)
	}
	tr := o.Trace()
	want := trace.Trace{
		trace.Invoke("c1", 1, "x"),
		trace.Response("c1", 1, "x", "out:x"),
	}
	if len(tr) != len(want) || tr[0] != want[0] || tr[1] != want[1] {
		t.Fatalf("trace = %v", tr)
	}
}

func TestComposerSwitch(t *testing.T) {
	fast := echoPhase("fast")
	fast.resolve = func(_ trace.ClientID, in trace.Value) Outcome { return SwitchOutcome("v-" + in) }
	backup := echoPhase("backup")
	o, err := NewComposer(fast, backup)
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Invoke("c1", "x")
	if err != nil {
		t.Fatal(err)
	}
	if out != "sw:v-x:x" {
		t.Fatalf("output = %q", out)
	}
	tr := o.Trace()
	want := trace.Trace{
		trace.Invoke("c1", 1, "x"),
		trace.Switch("c1", 2, "x", "v-x"),
		trace.Response("c1", 2, "x", "sw:v-x:x"),
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, tr[i], want[i])
		}
	}
	// The trace is well-formed for the composed signature (1,3).
	if !tr.PhaseWellFormed(1, 3) {
		t.Fatalf("composed trace not (1,3)-well-formed: %v", tr)
	}
	// After switching, the client's next invocation goes directly to the
	// backup phase.
	if _, err := o.Invoke("c1", "y"); err != nil {
		t.Fatal(err)
	}
	if fast.invokes != 1 {
		t.Fatalf("fast phase received %d invokes, want 1", fast.invokes)
	}
	tr = o.Trace()
	last := tr[len(tr)-1]
	if last.Phase != 2 {
		t.Fatalf("post-switch response numbered %d, want 2", last.Phase)
	}
}

func TestComposerThreePhaseChain(t *testing.T) {
	p1 := echoPhase("p1")
	p1.resolve = func(_ trace.ClientID, in trace.Value) Outcome { return SwitchOutcome("a") }
	p2 := echoPhase("p2")
	p2.switchIn = func(_ trace.ClientID, in, init trace.Value) Outcome { return SwitchOutcome(init + "b") }
	p3 := echoPhase("p3")
	o, err := NewComposer(p1, p2, p3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Invoke("c1", "x")
	if err != nil {
		t.Fatal(err)
	}
	if out != "sw:ab:x" {
		t.Fatalf("output = %q", out)
	}
	tr := o.Trace()
	// inv(1), swi(2), swi(3), res(3)
	kinds := []trace.Kind{trace.Inv, trace.Swi, trace.Swi, trace.Res}
	phases := []int{1, 2, 3, 3}
	for i := range kinds {
		if tr[i].Kind != kinds[i] || tr[i].Phase != phases[i] {
			t.Fatalf("trace[%d] = %v", i, tr[i])
		}
	}
	if !tr.PhaseWellFormed(1, 4) {
		t.Fatalf("three-phase trace not (1,4)-well-formed: %v", tr)
	}
}

func TestComposerLastPhaseMustNotSwitch(t *testing.T) {
	p := echoPhase("only")
	p.resolve = func(_ trace.ClientID, in trace.Value) Outcome { return SwitchOutcome("v") }
	o, err := NewComposer(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Invoke("c1", "x"); err == nil || !strings.Contains(err.Error(), "last phase") {
		t.Fatalf("expected last-phase error, got %v", err)
	}
}

func TestComposerNeedsPhases(t *testing.T) {
	if _, err := NewComposer(); err == nil {
		t.Fatal("empty composer must be rejected")
	}
}

// Concurrent clients produce a well-formed trace; run with -race.
func TestComposerConcurrentClients(t *testing.T) {
	fast := echoPhase("fast")
	n := 0
	var mu sync.Mutex
	fast.resolve = func(c trace.ClientID, in trace.Value) Outcome {
		mu.Lock()
		n++
		odd := n%2 == 1
		mu.Unlock()
		if odd {
			return SwitchOutcome("v")
		}
		return ReturnOutcome("ok")
	}
	backup := echoPhase("backup")
	o, err := NewComposer(fast, backup)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := trace.ClientID(rune('a' + i))
			for j := 0; j < 5; j++ {
				if _, err := o.Invoke(c, "x"); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	tr := o.Trace()
	if !tr.PhaseWellFormed(1, 3) {
		t.Fatalf("concurrent trace not (1,3)-well-formed: %v", tr)
	}
	if len(tr) < 8*5*2 {
		t.Fatalf("trace too short: %d actions", len(tr))
	}
}
