// The machine-readable summary for the streaming frontier engine
// (ISSUE 9): TestWriteBench8JSON runs the E18 streaming-memory
// experiment — one long-lived compacted exact session fed a
// capture-shaped register stream, post-GC live-heap checkpoints flat
// while the history grows by orders of magnitude, plus the
// compacted-vs-uncompacted comparison arm — and records BENCH_8.json.
package speclin_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// bench8Full opts into the full-scale (10M-op) E18 stream and the
// artifact write. The nightly bench job passes it; plain `go test .`
// runs a scaled-down smoke with the same flatness assertions.
var bench8Full = flag.Bool("bench8-full", false,
	"run the full-scale E18 streaming-memory experiment and write BENCH_8.json")

type bench8Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		StreamOps   int `json:"stream_ops"`
		Checkpoints int `json:"checkpoints"`
		CompareOps  int `json:"compare_ops"`
	} `json:"config"`
	Stream  []experiments.E18MemRow     `json:"stream_checkpoints"`
	Compare []experiments.E18CompareRow `json:"compact_vs_uncompacted"`
}

// checkStreamRows asserts the E18 invariant at any scale: the live heap
// at the last checkpoint stays within a small constant of the first —
// no history-length-proportional session state — with a fixed slack
// absorbing GC bookkeeping jitter at tiny smoke scales.
func checkStreamRows(t *testing.T, rows []experiments.E18MemRow, checkpoints int) {
	t.Helper()
	if len(rows) != checkpoints {
		t.Fatalf("got %d checkpoints, want %d", len(rows), checkpoints)
	}
	const slack = 1 << 20 // 1 MiB
	first := rows[0].LiveHeapBytes
	for _, r := range rows {
		t.Logf("%-20s ops %9d  live heap %6.2f MiB  nodes %9d  wall %8.1f ms",
			r.Name, r.Ops, float64(r.LiveHeapBytes)/(1<<20), r.Nodes, r.WallMs)
		if r.LiveHeapBytes > 2*first+slack {
			t.Errorf("%s: live heap %d bytes exceeds 2×first-checkpoint (%d) + 1MiB — "+
				"session state growing with history length", r.Name, r.LiveHeapBytes, first)
		}
	}
}

// checkCompareRows asserts the comparison arm's shape: both engines
// accept the clean stream, and the uncompacted reference retains at
// least an order of magnitude more live heap than the compacted session
// on the identical prefix.
func checkCompareRows(t *testing.T, rows []experiments.E18CompareRow) {
	t.Helper()
	if len(rows) != 2 {
		t.Fatalf("got %d comparison rows, want 2", len(rows))
	}
	comp, ref := rows[0], rows[1]
	t.Logf("%-22s ops %6d  live heap %7.2f MiB  wall %8.1f ms",
		comp.Name, comp.Ops, float64(comp.PeakRSSBytes)/(1<<20), comp.WallMs)
	t.Logf("%-22s ops %6d  live heap %7.2f MiB  wall %8.1f ms",
		ref.Name, ref.Ops, float64(ref.PeakRSSBytes)/(1<<20), ref.WallMs)
	if ref.PeakRSSBytes < 10*comp.PeakRSSBytes {
		t.Errorf("uncompacted reference holds %d bytes vs compacted %d: expected ≥10× — "+
			"is the reference arm actually uncompacted?", ref.PeakRSSBytes, comp.PeakRSSBytes)
	}
}

// TestWriteBench8JSON regenerates BENCH_8.json under -bench8-full. By
// default — and always under -short or the race detector — it runs the
// scaled-down smoke stream with the same flatness assertions and leaves
// the recorded artifact untouched.
func TestWriteBench8JSON(t *testing.T) {
	ctx := context.Background()
	if !*bench8Full || raceEnabled || testing.Short() {
		streamOps, compareOps := experiments.E18SmokeOps, experiments.E18CompareOps
		if raceEnabled || testing.Short() {
			// The uncompacted comparison arm is quadratic in its op
			// count; keep the race/short gate minutes-fast.
			streamOps, compareOps = experiments.E18SmokeOps/5, experiments.E18CompareOps/4
		}
		rows, err := experiments.E18StreamMem(ctx, streamOps, experiments.E18Checkpoints)
		if err != nil {
			t.Fatal(err)
		}
		checkStreamRows(t, rows, experiments.E18Checkpoints)
		cmp, err := experiments.E18CompactVsUncompacted(ctx, compareOps)
		if err != nil {
			t.Fatal(err)
		}
		checkCompareRows(t, cmp)
		t.Log("smoke mode (no -bench8-full): BENCH_8.json left untouched")
		return
	}

	stream, err := experiments.E18StreamMem(ctx, experiments.E18FullOps, experiments.E18Checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamRows(t, stream, experiments.E18Checkpoints)
	cmp, err := experiments.E18CompactVsUncompacted(ctx, experiments.E18CompareOps)
	if err != nil {
		t.Fatal(err)
	}
	checkCompareRows(t, cmp)

	sum := bench8Summary{
		Issue: 9,
		Description: "Streaming frontier engine with bounded memory: one compacted exact session " +
			"checks a 10M-op capture-shaped stream with flat post-GC live heap under the per-feed " +
			"budget, vs the uncompacted reference session's O(history) retention on the same prefix",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Stream:     stream,
		Compare:    cmp,
	}
	sum.Config.StreamOps = experiments.E18FullOps
	sum.Config.Checkpoints = experiments.E18Checkpoints
	sum.Config.CompareOps = experiments.E18CompareOps

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_8.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_8.json")
}
