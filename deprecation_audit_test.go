package speclin_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDeprecatedShimsOnlyInFacade is the checker-API-v2 deprecation
// audit (DESIGN.md decision 11): the v1 entry points and their Options
// structs survive only as shims in the facade (speclin.go) plus their
// dedicated shim test; no internal package, cmd, example or other test
// may call them. CI runs the same audit as a grep step so the rule is
// enforced on plain source checkouts too.
func TestDeprecatedShimsOnlyInFacade(t *testing.T) {
	// The v1 surface: the facade Options structs and the three disjoint
	// entry points they configure. (lin.Options/slin.Options are fully
	// deleted, so the compiler enforces those.)
	deprecated := regexp.MustCompile(
		`\bLinOptions\b|\bSLinOptions\b|CheckClassicallyLinearizable\(|CheckSpeculativelyLinearizable\(|speclin\.CheckLinearizable\(`)
	allowed := map[string]bool{
		"speclin.go":                true, // defines the shims
		"deprecated_shim_test.go":   true, // tests the shims keep working
		"deprecation_audit_test.go": true, // this audit
	}

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || allowed[filepath.ToSlash(path)] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if deprecated.MatchString(line) {
				t.Errorf("%s:%d still uses the deprecated v1 checker surface: %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrTooManyOpsNeverFires is the decision-13 deprecation audit: the
// classical checker is uncapped, so the ErrTooManyOps sentinel must not
// be returned or consulted anywhere — it survives only as a deprecated
// alias so external errors.Is guards keep compiling. Allowed mentions:
// its declaration (internal/lin/lin.go), the facade re-export
// (speclin.go), and the boundary tests asserting it does NOT fire.
func TestErrTooManyOpsNeverFires(t *testing.T) {
	allowed := map[string]bool{
		"speclin.go":                            true, // re-exports the deprecated alias
		"internal/lin/lin.go":                   true, // declares the deprecated alias
		"internal/lin/classical_sparse_test.go": true, // asserts the sentinel stays silent
		"deprecation_audit_test.go":             true, // this audit
	}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || allowed[filepath.ToSlash(path)] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			// Prose may explain the deprecation; only code may not
			// consult the sentinel.
			if c := strings.Index(line, "//"); c >= 0 {
				line = line[:c]
			}
			if strings.Contains(line, "ErrTooManyOps") {
				t.Errorf("%s:%d touches the deprecated ErrTooManyOps sentinel (it never fires): %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
