// The machine-readable summary for the sharded-SMR refactor (ISSUE 2):
// TestWriteBench2JSON runs the E12 shard sweep — a keyed KV workload
// hash-partitioned across 1..16 independent speculative replicated logs
// sharing one simulated network — and records BENCH_2.json. At the
// largest configuration the sweep lands one million simulated commands;
// every shard's history is decomposed per key and checked linearizable
// with the exact checker, and per-shard log agreement is verified.
package speclin_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

type bench2Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		Clients      int   `json:"clients"`
		Servers      int   `json:"servers"`
		PaceDelays   int64 `json:"pace_delays"`
		CompactEvery int   `json:"compact_every"`
		Seed         int64 `json:"seed"`
	} `json:"config"`
	Rows []experiments.ShardRunResult `json:"shard_sweep"`
}

// TestWriteBench2JSON regenerates BENCH_2.json on every plain `go test .`
// run. Under -short or the race detector it runs a scaled-down smoke
// sweep and leaves the recorded artifact untouched.
func TestWriteBench2JSON(t *testing.T) {
	shards, perShard, zipfPerShard := experiments.E12Shards, experiments.E12PerShard, experiments.E12ZipfPerShard
	full := !raceEnabled && !testing.Short()
	if !full {
		shards, perShard, zipfPerShard = []int{1, 4}, 2_000, 500
	}
	rows, err := experiments.E12Rows(context.Background(), shards, perShard, zipfPerShard)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range rows {
		if !r.Linearizable {
			t.Errorf("shards=%d %s: per-key histories not all linearizable", r.Shards, r.Distribution)
		}
		if !r.Consistent {
			t.Errorf("shards=%d %s: per-shard log agreement failed", r.Shards, r.Distribution)
		}
		if int64(r.Commands) != r.CheckedOps {
			t.Errorf("shards=%d %s: checked %d ops of %d landed commands",
				r.Shards, r.Distribution, r.CheckedOps, r.Commands)
		}
		t.Logf("shards=%2d %-10s commands=%7d cmds/delay=%.3f fast-path=%.1f%% latency=%.1f checked=%d histories (%.0fms)",
			r.Shards, r.Distribution, r.Commands, r.CmdsPerDelay,
			100*r.FastPathRate, r.MeanLatency, r.KeyHistories, r.CheckWallMs)
	}

	// Weak scaling: constant per-shard offered load must sustain
	// near-linear total throughput.
	first, last := rows[0], rows[len(rows)-2] // last uniform row (zipf row is appended after)
	wantRatio := float64(last.Shards) / float64(first.Shards)
	gotRatio := last.CmdsPerDelay / first.CmdsPerDelay
	if gotRatio < 0.7*wantRatio {
		t.Errorf("throughput scaled %.2fx from %d to %d shards (want ≥ %.2fx)",
			gotRatio, first.Shards, last.Shards, 0.7*wantRatio)
	}

	if !full {
		t.Log("short/race mode: BENCH_2.json left untouched")
		return
	}
	if top := rows[len(rows)-2]; top.Commands < 1_000_000 {
		t.Errorf("largest configuration landed %d commands (want ≥ 1,000,000)", top.Commands)
	}
	sum := bench2Summary{
		Issue: 2,
		Description: "sharded replicated-log SMR: keyed KV workload hash-partitioned across " +
			"independent speculative logs (Quorum fast path + Paxos backup per slot) sharing " +
			"one simulated network; weak scaling at 62,500 commands/shard, paced open-loop " +
			"submission, log compaction on; per-key histories checked linearizable " +
			"(lin.CheckAll) and per-shard log agreement verified",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       rows,
	}
	sum.Config.Clients = experiments.E12Base.Clients
	sum.Config.Servers = experiments.E12Base.Servers
	sum.Config.PaceDelays = int64(experiments.E12Base.Pace)
	sum.Config.CompactEvery = experiments.E12Base.CompactEvery
	sum.Config.Seed = experiments.E12Base.Seed

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_2.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_2.json")
}

// TestOnlineCheckingThroughputParity is the checker-API-v2 acceptance
// gate for E12: the sharded run with online (streaming) per-key checking
// enabled must complete with the same simulated schedule — hence no worse
// simulated throughput — as the post-hoc baseline BENCH_2.json records,
// and reach the same verdicts. (Checking happens outside the simulated
// network either way; online mode merely overlaps it with the run and
// drops the post-hoc history buffering.)
func TestOnlineCheckingThroughputParity(t *testing.T) {
	cfg := experiments.E12Base
	cfg.Shards = 4
	cfg.Commands = 20_000
	if testing.Short() || raceEnabled {
		cfg.Commands = 4_000
	}

	post, err := experiments.RunSharded(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	online := cfg
	online.Online = true
	onl, err := experiments.RunSharded(context.Background(), online)
	if err != nil {
		t.Fatal(err)
	}

	if !post.Linearizable || !onl.Linearizable {
		t.Fatalf("linearizability: post-hoc %v, online %v", post.Linearizable, onl.Linearizable)
	}
	if onl.SimTime != post.SimTime {
		t.Errorf("online checking changed the simulated schedule: %d vs %d delays", onl.SimTime, post.SimTime)
	}
	if onl.CmdsPerDelay < post.CmdsPerDelay {
		t.Errorf("online throughput %.3f cmds/delay below post-hoc baseline %.3f", onl.CmdsPerDelay, post.CmdsPerDelay)
	}
	if onl.KeyHistories != post.KeyHistories || onl.CheckedOps != post.CheckedOps {
		t.Errorf("online checked %d histories/%d ops, post-hoc %d/%d",
			onl.KeyHistories, onl.CheckedOps, post.KeyHistories, post.CheckedOps)
	}
	t.Logf("post-hoc: %.3f cmds/delay, check %.0fms; online: %.3f cmds/delay, check %.0fms",
		post.CmdsPerDelay, post.CheckWallMs, onl.CmdsPerDelay, onl.CheckWallMs)
}
