// The machine-readable summary for the ADT-specialized fast-path
// checkers (ISSUE 7): TestWriteBench6JSON runs the E16 engine comparison
// — the register fast path (reduction to state reachability, DESIGN.md
// decision 15) against the exact engines over the per-key histories of a
// sharded SMR run, one-shot and streamed online, uniform and
// zipf-skewed — and records BENCH_6.json. At the full scale the uniform
// workload lands one million simulated commands checked online.
package speclin_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// bench6Full opts into the full-scale E16 comparison (and the artifact
// write): ~8 minutes dominated by the exact sessions burning their
// budgets, which does not fit the root package's share of go test's
// default 10-minute timeout alongside the other bench sweeps. The
// nightly bench job passes it (with an explicit -timeout); plain
// `go test .` runs the scaled-down smoke.
var bench6Full = flag.Bool("bench6-full", false,
	"run the full-scale E16 comparison and write BENCH_6.json")

type bench6Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		Clients      int   `json:"clients"`
		Servers      int   `json:"servers"`
		PaceDelays   int64 `json:"pace_delays"`
		CompactEvery int   `json:"compact_every"`
		Seed         int64 `json:"seed"`
		KeysDivisor  int   `json:"uniform_keys_divisor"`
	} `json:"config"`
	Dists []experiments.FastpathDist `json:"fastpath"`
}

// checkFastpathDist asserts the invariants every E16 distribution must
// satisfy at any scale: verdict agreement across engines and fed-action
// node accounting on the fast sessions (FastpathRows itself already
// rejects schedule-digest divergence).
func checkFastpathDist(t *testing.T, d experiments.FastpathDist) {
	t.Helper()
	if len(d.Rows) != 5 {
		t.Fatalf("%s: got %d rows, want 5", d.Distribution, len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.Mode == "baseline" {
			continue
		}
		if !r.Linearizable && !r.BudgetExhausted {
			t.Errorf("%s %s: histories not linearizable", d.Distribution, r.Name)
		}
		if r.Engine == "fast" && r.CheckNodes != 2*r.CheckedOps {
			t.Errorf("%s %s: fast path spent %d nodes for %d ops (want one per fed action)",
				d.Distribution, r.Name, r.CheckNodes, r.CheckedOps)
		}
	}
}

// TestWriteBench6JSON regenerates BENCH_6.json under -bench6-full (see
// the flag above for why the full comparison is opt-in). By default —
// and always under -short or the race detector — it runs a scaled-down
// uniform-only smoke comparison and leaves the recorded artifact
// untouched.
func TestWriteBench6JSON(t *testing.T) {
	ctx := context.Background()
	if !*bench6Full || raceEnabled || testing.Short() {
		cfg := experiments.E12Base
		cfg.Shards = 4
		cfg.Commands = 12_000
		// ~128-op histories, not E16KeysDivisor: at this tiny scale the
		// full-length histories would be dense enough to starve the exact
		// sessions' budget, and the smoke's job is engine agreement under
		// -race, not asymptotics.
		cfg.Keys = cfg.Commands / 128
		d, err := experiments.FastpathRows(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkFastpathDist(t, d)
		t.Log("smoke mode (no -bench6-full): BENCH_6.json left untouched")
		return
	}

	dists, err := experiments.E16Rows(ctx,
		experiments.E16UniformShards, experiments.E16UniformCommands, experiments.E16ZipfCommands)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dists {
		checkFastpathDist(t, d)
		t.Logf("%-10s oneshot speedup %.1fx, online speedup %.1fx",
			d.Distribution, d.OneshotSpeedup, d.OnlineSpeedup)
	}

	uni := dists[0]
	if uni.Commands < 1_000_000 {
		t.Errorf("uniform configuration landed %d commands (want ≥ 1,000,000)", uni.Commands)
	}
	// The uniform E16 acceptance, post decision 17: the per-feed budget
	// plus frontier compaction let the exact sessions finish the whole
	// 1M-command run (they used to starve mid-run and forfeit the
	// comparison), and the fast path still wins by a real, measured
	// multiple on the completed runs — ~4x here, down from the starved
	// ≥10x lower bound precisely because compaction made the exact
	// engine an order of magnitude cheaper.
	for _, r := range uni.Rows {
		if r.Name == "session-exact" && r.BudgetExhausted {
			t.Error("uniform session-exact starved its per-feed budget; decision 17 expects completion")
		}
	}
	if uni.OnlineSpeedup < 2 {
		t.Errorf("uniform online check speedup %.1fx (want ≥ 2x)", uni.OnlineSpeedup)
	}
	// On the skewed distribution the exact sessions must not merely be
	// slower — a single hot-key feed blows the 2M-node budget even
	// refreshed per feed, while the fast sessions (which spend none)
	// finish the same run. That exhaustion is the Hamza complexity
	// bound showing through, not a tuning artifact.
	zipf := dists[1]
	for _, r := range zipf.Rows {
		switch r.Name {
		case "session-exact":
			if !r.BudgetExhausted {
				t.Errorf("zipf session-exact completed within budget; E16 expects hot-key exhaustion")
			}
		case "session-fast":
			if !r.Linearizable {
				t.Errorf("zipf session-fast: histories not linearizable")
			}
		}
	}

	sum := bench6Summary{
		Issue: 7,
		Description: "ADT-specialized fast-path checkers: the register checker (reduction to " +
			"state reachability over per-value write blocks) vs the exact engines on the " +
			"per-key histories of a sharded SMR run — one-shot over recorded histories and " +
			"streamed through online per-key sessions during the simulation, uniform and " +
			"zipf(1.2) keys; ~384-op histories; identical verdicts and schedule digests",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dists:      dists,
	}
	sum.Config.Clients = experiments.E12Base.Clients
	sum.Config.Servers = experiments.E12Base.Servers
	sum.Config.PaceDelays = int64(experiments.E12Base.Pace)
	sum.Config.CompactEvery = experiments.E12Base.CompactEvery
	sum.Config.Seed = experiments.E12Base.Seed
	sum.Config.KeysDivisor = experiments.E16KeysDivisor

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_6.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_6.json")
}
