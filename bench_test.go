// Benchmarks regenerating every experiment of EXPERIMENTS.md as a
// testing.B target (one per table/figure row family), plus the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The checker-memoization benchmarks and the machine-readable perf
// summary (BENCH_1.json) live in bench1_test.go; TestWriteBench1JSON
// regenerates the summary on every plain `go test .` run.
package speclin_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	speclin "repro"
	"repro/internal/adt"
	"repro/internal/almspec"
	"repro/internal/cascons"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/rcons"
	"repro/internal/shmem"
	"repro/internal/smcons"
	"repro/internal/smr"
	"repro/internal/trace"
	"repro/internal/uobj"
	"repro/internal/workload"
)

func ids(prefix string, n int) []msgnet.ProcID {
	out := make([]msgnet.ProcID, n)
	for i := range out {
		out[i] = msgnet.ProcID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

// ---- E1: fault-free latency, fast path vs Paxos ----

func benchConsensusOnce(b *testing.B, protos []mpcons.PhaseProtocol, clients int, seed int64, jitter msgnet.Time) (totalDelays int64, ops int64) {
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: jitter})
	obj, err := mpcons.Build(w, ids("c", clients), ids("s", 3), protos...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		obj.ProposeAt(msgnet.ProcID(fmt.Sprintf("c%d", i+1)), trace.Value(fmt.Sprintf("v%d", i)), 0)
	}
	obj.Run(500_000)
	for _, r := range obj.Results() {
		totalDelays += int64(r.Latency())
		ops++
	}
	return
}

func BenchmarkE1FastPathLatency(b *testing.B) {
	protos := []mpcons.PhaseProtocol{quorum.Protocol{Timeout: 10}, paxos.Protocol{}}
	var delays, ops int64
	for i := 0; i < b.N; i++ {
		d, o := benchConsensusOnce(b, protos, 1, int64(i+1), 1)
		delays, ops = delays+d, ops+o
	}
	b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
}

func BenchmarkE1PaxosBaseline(b *testing.B) {
	protos := []mpcons.PhaseProtocol{paxos.Protocol{}}
	var delays, ops int64
	for i := 0; i < b.N; i++ {
		d, o := benchConsensusOnce(b, protos, 1, int64(i+1), 1)
		delays, ops = delays+d, ops+o
	}
	b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
}

// ---- E2: contention sweep ----

func BenchmarkE2ContentionSweep(b *testing.B) {
	protos := []mpcons.PhaseProtocol{quorum.Protocol{Timeout: 10, Retransmit: 6}, paxos.Protocol{}}
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			var delays, ops int64
			for i := 0; i < b.N; i++ {
				d, o := benchConsensusOnce(b, protos, clients, int64(i+1), 4)
				delays, ops = delays+d, ops+o
			}
			b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
		})
	}
}

// ---- E3: fault injection ----

func BenchmarkE3FaultInjection(b *testing.B) {
	for _, crash := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("crash-%d", crash), func(b *testing.B) {
			var delays, ops int64
			for i := 0; i < b.N; i++ {
				w := msgnet.New(msgnet.Config{Seed: int64(i + 1), MinDelay: 1, MaxDelay: 3})
				obj, err := mpcons.Build(w, ids("c", 2), ids("s", 5),
					quorum.Protocol{Timeout: 10, Retransmit: 6}, paxos.Protocol{})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < crash; k++ {
					w.Crash(msgnet.ProcID(fmt.Sprintf("s%d", k+1)), 0)
				}
				obj.ProposeAt("c1", "a", 1)
				obj.ProposeAt("c2", "b", 2)
				obj.Run(500_000)
				for _, r := range obj.Results() {
					delays += int64(r.Latency())
					ops++
				}
			}
			b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
		})
	}
}

// ---- E4: native register path vs CAS ----

func BenchmarkE4RegisterVsCAS(b *testing.B) {
	b.Run("register-write-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var r shmem.Register
			r.Store("v")
			_ = r.Load()
		}
	})
	b.Run("cas-from-bottom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c shmem.CASCell
			_ = c.CompareAndSwapFromBottom("v")
		}
	})
	b.Run("rcons-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := rcons.NewNativePhase()
			if _, err := p.Invoke("c", adt.ProposeInput("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cascons-switch-in", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := cascons.NewNativePhase()
			if _, err := p.SwitchIn("c", adt.ProposeInput("v"), "v"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E5: shared-memory contention, speculative vs CAS-only ----

func BenchmarkE5SharedMemContention(b *testing.B) {
	for _, gs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("speculative-%d", gs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obj, err := core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for g := 0; g < gs; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						c := trace.ClientID(fmt.Sprintf("g%d", g))
						_, _ = obj.Invoke(c, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", g)), string(c)))
					}(g)
				}
				wg.Wait()
			}
		})
		b.Run(fmt.Sprintf("cas-only-%d", gs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cell shmem.CASCell
				var wg sync.WaitGroup
				for g := 0; g < gs; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						_ = cell.CompareAndSwapFromBottom(trace.Value(fmt.Sprintf("v%d", g)))
					}(g)
				}
				wg.Wait()
			}
		})
	}
}

// ---- E6: model checking throughput ----

func BenchmarkE6ModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b"}, FoldEndpoints: true})
		stats, err := check.ExhaustiveTraces(sys, func(s *smcons.System) error {
			plain := s.Trace().Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
			res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
			if err != nil {
				return err
			}
			if !res.OK {
				return fmt.Errorf("not linearizable")
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Runs), "schedules")
	}
}

// ---- E7: composition refinement model check ----

func BenchmarkE7Refinement(b *testing.B) {
	clients := []trace.ClientID{"c1", "c2"}
	inputs := []trace.Value{"u1", "u2"}
	for i := 0; i < b.N; i++ {
		first := almspec.Spec(almspec.Config{M: 1, N: 2, Clients: clients, Inputs: inputs})
		second := almspec.Spec(almspec.Config{
			M: 2, N: 3, Clients: clients, Inputs: inputs,
			InitUniverse: []trace.History{{}, {"u1"}, {"u2"}, {"u1", "u2"}, {"u2", "u1"}},
		})
		impl := ioa.Compose(first, second)
		spec := almspec.Spec(almspec.Config{M: 1, N: 3, Clients: clients, Inputs: inputs})
		res, err := ioa.CheckTraceInclusion(impl, spec, ioa.InclusionOptions{
			MaxPairs: 5_000_000,
			Class:    almspec.ClassErasingLevels(1, 3),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("refinement refuted")
		}
		b.ReportMetric(float64(res.Pairs), "subsetpairs")
	}
}

// ---- E8: checker performance, new vs classical definition ----

func e8Traces(n int) []trace.Trace {
	r := rand.New(rand.NewSource(42))
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")}
	out := make([]trace.Trace, n)
	for i := range out {
		opts := workload.TraceOpts{Clients: 3, Ops: 6, Inputs: inputs, UniqueTags: true}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		out[i] = workload.Random(adt.Consensus{}, r, opts)
	}
	return out
}

func BenchmarkE8Checkers(b *testing.B) {
	traces := e8Traces(256)
	b.Run("new-definition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.Check(context.Background(), adt.Consensus{}, traces[i%len(traces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.CheckClassical(context.Background(), adt.Consensus{}, traces[i%len(traces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slin-first-phase", func(b *testing.B) {
		r := rand.New(rand.NewSource(7))
		phaseTraces := make([]trace.Trace, 256)
		for i := range phaseTraces {
			phaseTraces[i] = workload.FirstPhase(r, workload.PhaseOpts{Clients: 3, NoLateOps: true})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lintSLin(phaseTraces[i%len(phaseTraces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func lintSLin(t trace.Trace) (bool, error) {
	rep, err := speclin.Check(context.Background(), speclin.CheckSpec{
		Folder: speclin.ConsensusADT, Mode: speclin.SLin,
		RInit: speclin.ConsensusRInit, M: 1, N: 2,
	}, t)
	return rep.Verdict == speclin.Linearizable, err
}

// ---- E9: SMR throughput ----

func BenchmarkE9SMRThroughput(b *testing.B) {
	for _, fast := range []bool{true, false} {
		name := "speculative"
		if !fast {
			name = "paxos-only"
		}
		b.Run(name, func(b *testing.B) {
			var delays, cmds int64
			for i := 0; i < b.N; i++ {
				w := msgnet.New(msgnet.Config{Seed: int64(i + 1), MinDelay: 1, MaxDelay: 2})
				cl, err := smr.Build(w, ids("c", 2), ids("s", 3),
					smr.Config{FastPath: fast, QuorumTimeout: 8, Retransmit: 4})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 4; j++ {
					cl.SubmitAt("c1", smr.SetCmd("a", fmt.Sprintf("x%d", j)), msgnet.Time(j*4))
					cl.SubmitAt("c2", smr.SetCmd("b", fmt.Sprintf("y%d", j)), msgnet.Time(j*4+1))
				}
				cl.Run(1_000_000)
				for _, r := range cl.Results() {
					delays += int64(r.Latency())
					cmds++
				}
				if err := cl.CheckConsistency(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(delays)/float64(cmds), "msgdelays/cmd")
		})
	}
}

// ---- E10: three-phase chain ----

func BenchmarkE10PhaseChain(b *testing.B) {
	protos := []mpcons.PhaseProtocol{
		quorum.Protocol{Timeout: 10, Retransmit: 6},
		quorum.Protocol{Timeout: 10, Retransmit: 6},
		paxos.Protocol{},
	}
	var delays, ops int64
	for i := 0; i < b.N; i++ {
		d, o := benchConsensusOnce(b, protos, 3, int64(i+1), 4)
		delays, ops = delays+d, ops+o
	}
	b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
}

// ---- E11: universal construction (arbitrary ADTs over the log) ----

func BenchmarkE11Replicated(b *testing.B) {
	adts := []struct {
		name string
		f    adt.Folder
		in   func(i int) trace.Value
	}{
		{"register", adt.Register{}, func(i int) trace.Value {
			if i%2 == 0 {
				return adt.WriteInput(fmt.Sprintf("v%d", i))
			}
			return adt.ReadInput()
		}},
		{"queue", adt.Queue{}, func(i int) trace.Value {
			if i%2 == 0 {
				return adt.EnqInput(fmt.Sprintf("v%d", i))
			}
			return adt.DeqInput()
		}},
	}
	for _, tc := range adts {
		b.Run(tc.name, func(b *testing.B) {
			var delays, ops int64
			for i := 0; i < b.N; i++ {
				w := msgnet.New(msgnet.Config{Seed: int64(i + 1), MinDelay: 1, MaxDelay: 2})
				o, err := uobj.Build(w, ids("c", 2), ids("s", 3), tc.f,
					smr.Config{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 4; j++ {
					if err := o.InvokeAt("c1", tc.in(j), msgnet.Time(j*12)); err != nil {
						b.Fatal(err)
					}
					if err := o.InvokeAt("c2", tc.in(j+1), msgnet.Time(j*12+1)); err != nil {
						b.Fatal(err)
					}
				}
				o.Run(1_000_000)
				for _, r := range o.Results() {
					delays += int64(r.Latency())
					ops++
				}
				res, err := o.CheckLinearizable(context.Background())
				if err != nil || !res.OK {
					b.Fatalf("not linearizable: %+v %v", res, err)
				}
			}
			b.ReportMetric(float64(delays)/float64(ops), "msgdelays/op")
		})
	}
}

// ---- Ablation: ADT state folding in the checkers (DESIGN.md ✎2) ----

// unfoldedConsensus disables state collapse: the folded "state" is the
// entire history, so the checker's memoization degrades to raw histories.
type unfoldedConsensus struct{ adt.Consensus }

func (unfoldedConsensus) Empty() adt.State { return "" }

func (unfoldedConsensus) Step(s adt.State, in trace.Value) adt.State {
	return s + adt.State("\x00"+in)
}

func (u unfoldedConsensus) Out(s adt.State, in trace.Value) trace.Value {
	// Recover the first proposal from the replayed history.
	first := in
	if s != "" {
		first = trace.Value(strings.SplitN(string(s), "\x00", 3)[1])
	}
	v, _ := adt.ProposalOf(adt.Untag(first))
	return adt.DecideOutput(v)
}

func BenchmarkAblationStateFold(b *testing.B) {
	traces := e8Traces(256)
	// A backtracking-heavy workload: wide concurrent non-linearizable
	// traces force the checker to exhaust its search space, which is
	// where folded-state memoization pays (equivalent interleavings
	// collapse to one state; unfolded, each permutation is distinct).
	hard := func() trace.Trace {
		var tr trace.Trace
		n := 7
		for i := 0; i < n; i++ {
			c := trace.ClientID(fmt.Sprintf("h%d", i))
			tr = append(tr, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))))
		}
		for i := 0; i < n; i++ {
			c := trace.ClientID(fmt.Sprintf("h%d", i))
			in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))
			// Split decisions: never linearizable; full search required.
			tr = append(tr, trace.Response(c, 1, in, adt.DecideOutput(fmt.Sprintf("v%d", i%2))))
		}
		return tr
	}()
	b.Run("folded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.Check(context.Background(), adt.Consensus{}, traces[i%len(traces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unfolded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.Check(context.Background(), unfoldedConsensus{}, traces[i%len(traces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Ablation finding: the backtracking-heavy workload costs the same
	// with and without folding — the searcher's memoization necessarily
	// keys on concrete commit chains (prefix-claim bookkeeping), so
	// folding is a constant-factor win (incremental output computation),
	// not an asymptotic one. DESIGN.md decision 2 records this.
	b.Run("folded-hard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lin.Check(context.Background(), adt.Consensus{}, hard, check.WithBudget(50_000_000))
			if err != nil {
				b.Fatal(err)
			}
			if res.OK {
				b.Fatal("split-decision trace accepted")
			}
		}
	})
	b.Run("unfolded-hard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lin.Check(context.Background(), unfoldedConsensus{}, hard, check.WithBudget(50_000_000))
			if err == nil && res.OK {
				b.Fatal("split-decision trace accepted")
			}
		}
	})
}

// ---- Ablation: simulator jitter cost (DESIGN.md ✎6) ----

func BenchmarkAblationSimJitter(b *testing.B) {
	protos := []mpcons.PhaseProtocol{quorum.Protocol{Timeout: 10, Retransmit: 6}, paxos.Protocol{}}
	b.Run("unit-delay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchConsensusOnce(b, protos, 4, int64(i+1), 1)
		}
	})
	b.Run("jitter-1-5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchConsensusOnce(b, protos, 4, int64(i+1), 5)
		}
	})
}
