package speclin_test

import (
	"testing"

	speclin "repro"
)

// The deprecated v1 shims must keep returning the v2 engines' verdicts:
// external users migrate on their own schedule (DESIGN.md decision 11's
// deprecation policy), so each shim is pinned by a small smoke test.
func TestDeprecatedShimsStillWork(t *testing.T) {
	in := speclin.TagInput(speclin.ProposeInput("a"), "c1")
	tr := speclin.Trace{
		speclin.Invoke("c1", 1, in),
		speclin.Response("c1", 1, in, "d:a"),
	}

	res, err := speclin.CheckLinearizable(speclin.ConsensusADT, tr, speclin.LinOptions{})
	if err != nil || !res.OK {
		t.Fatalf("CheckLinearizable shim: %+v %v", res, err)
	}
	res, err = speclin.CheckClassicallyLinearizable(speclin.ConsensusADT, tr, speclin.LinOptions{Budget: 10_000})
	if err != nil || !res.OK {
		t.Fatalf("CheckClassicallyLinearizable shim: %+v %v", res, err)
	}
	sres, err := speclin.CheckSpeculativelyLinearizable(
		speclin.ConsensusADT, speclin.ConsensusRInit, 1, 2, tr, speclin.SLinOptions{})
	if err != nil || !sres.OK {
		t.Fatalf("CheckSpeculativelyLinearizable shim: %+v %v", sres, err)
	}
}
