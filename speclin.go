// Package speclin is the public API of this reproduction of
// "Speculative Linearizability" (Guerraoui, Kuncak, Losa; PLDI 2012).
//
// The package re-exports the building blocks a user composes:
//
//   - the trace model (Trace, Action, History) and abstract data types;
//   - the linearizability checkers (the paper's new definition and the
//     classical one) and the speculative linearizability checker
//     SLin(m,n) with its r_init interpretation relations;
//   - the phase-composition runtime (Phase, Composer) with the shared
//     memory phases of Figures 2 and 3 ready to plug in;
//   - the message-passing stack: simulated network, the Quorum fast path,
//     the Paxos backup, composed consensus objects and SMR clusters.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the map from the paper's sections to packages.
package speclin

import (
	"repro/internal/adt"
	"repro/internal/cascons"
	"repro/internal/core"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/rcons"
	"repro/internal/slin"
	"repro/internal/smr"
	"repro/internal/trace"
	"repro/internal/uobj"
)

// Trace model.
type (
	// Trace is a finite sequence of interface actions (§3).
	Trace = trace.Trace
	// Action is an invocation, response or switch event.
	Action = trace.Action
	// History is a sequence of ADT inputs (§4.4).
	History = trace.History
	// ClientID identifies a client process.
	ClientID = trace.ClientID
	// Value is an opaque input/output/switch value.
	Value = trace.Value
)

// Action constructors.
var (
	// Invoke builds inv(c, phase, in).
	Invoke = trace.Invoke
	// Response builds res(c, phase, in, out).
	Response = trace.Response
	// SwitchAction builds swi(c, phase, in, v).
	SwitchAction = trace.Switch
)

// Abstract data types (Definition 4).
type (
	// ADT is a data type given by its output function.
	ADT = adt.ADT
	// Folder is an ADT with a canonical state machine.
	Folder = adt.Folder
)

// Built-in ADTs.
var (
	// ConsensusADT is Figure 1's consensus (inputs p:v, outputs d:v).
	ConsensusADT = adt.Consensus{}
	// RegisterADT is a read/write register.
	RegisterADT = adt.Register{}
	// CounterADT is a fetch-and-increment counter.
	CounterADT = adt.Counter{}
	// QueueADT is a FIFO queue.
	QueueADT = adt.Queue{}
	// UniversalADT is §6's identity-output ADT.
	UniversalADT = adt.Universal{}
)

// Consensus value helpers.
var (
	// ProposeInput builds the consensus input p(v).
	ProposeInput = adt.ProposeInput
	// DecideOutput builds the consensus output d(v).
	DecideOutput = adt.DecideOutput
	// TagInput attaches an occurrence tag to an input (repeated events).
	TagInput = adt.Tag
)

// Linearizability checking (§4, Appendix A).
type (
	// LinOptions configures the linearizability checkers.
	LinOptions = lin.Options
	// LinResult is a checker verdict with optional witness.
	LinResult = lin.Result
)

// Checker error sentinels (match with errors.Is).
var (
	// ErrBudget reports that a lin check exceeded its search budget:
	// the verdict is unknown, and a larger LinOptions.Budget may decide
	// it.
	ErrBudget = lin.ErrBudget
	// ErrTooManyOps reports that CheckClassicallyLinearizable was given
	// a trace beyond its 63-operation representation cap; no budget
	// helps — use CheckLinearizable, which has no cap.
	ErrTooManyOps = lin.ErrTooManyOps
	// ErrSLinBudget is ErrBudget's counterpart for the SLin checker.
	ErrSLinBudget = slin.ErrBudget
)

// CheckLinearizable decides the paper's new definition of
// linearizability (Definitions 5–15).
func CheckLinearizable(f Folder, t Trace, opts LinOptions) (LinResult, error) {
	return lin.Check(f, t, opts)
}

// CheckClassicallyLinearizable decides the classical definition
// (Appendix A); by Theorem 1 the two agree on unique-input traces.
func CheckClassicallyLinearizable(f Folder, t Trace, opts LinOptions) (LinResult, error) {
	return lin.CheckClassical(f, t, opts)
}

// Speculative linearizability checking (§5).
type (
	// RInit is the r_init interpretation relation of §5.2.
	RInit = slin.RInit
	// SLinOptions configures the SLin checker.
	SLinOptions = slin.Options
	// SLinResult is the SLin checker verdict.
	SLinResult = slin.Result
)

// Interpretation relations for the built-in case studies.
var (
	// ConsensusRInit interprets switch value v as histories starting
	// with p(v) (§2.4).
	ConsensusRInit = slin.ConsensusRInit{}
	// UniversalRInit maps an encoded history to itself (§6).
	UniversalRInit = slin.UniversalRInit{}
)

// CheckSpeculativelyLinearizable decides SLin(m,n) (Definition 36).
func CheckSpeculativelyLinearizable(f Folder, r RInit, m, n int, t Trace, opts SLinOptions) (SLinResult, error) {
	return slin.Check(f, r, m, n, t, opts)
}

// Phase composition runtime (§2.3, §5.1).
type (
	// Phase is one speculation phase of a concurrent object.
	Phase = core.Phase
	// Outcome is a phase's resolution of an operation.
	Outcome = core.Outcome
	// Composer chains phases 1..n into one object.
	Composer = core.Composer
)

// Outcome constructors for Phase implementations.
var (
	// ReturnOutcome resolves an operation with a response.
	ReturnOutcome = core.ReturnOutcome
	// SwitchOutcome aborts an operation to the next phase.
	SwitchOutcome = core.SwitchOutcome
)

// NewObject composes speculation phases into a concurrent object whose
// trace is recorded for post-hoc checking.
func NewObject(phases ...Phase) (*Composer, error) { return core.NewComposer(phases...) }

// NewSharedMemoryConsensus builds the §2.5 object: the register-based
// RCons fast path (Figure 2) composed with the CAS-based CASCons backup
// (Figure 3), over native atomics. Inputs are consensus proposals
// (ProposeInput, optionally tagged); outputs are decisions.
func NewSharedMemoryConsensus() (*Composer, error) {
	return core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
}

// Message-passing stack (§2.1).
type (
	// Network is the deterministic discrete-event network simulator.
	Network = msgnet.Network
	// NetConfig parameterizes the network (seed, delays, loss, dup).
	NetConfig = msgnet.Config
	// ProcID identifies a simulated process.
	ProcID = msgnet.ProcID
	// VTime is virtual time in message-delay units.
	VTime = msgnet.Time
	// ConsensusObject is a composed message-passing consensus object.
	ConsensusObject = mpcons.Object
	// OpResult describes one completed consensus operation.
	OpResult = mpcons.OpResult
	// PhaseProtocol is a message-passing speculation phase.
	PhaseProtocol = mpcons.PhaseProtocol
	// QuorumProtocol is the §2.1 fast path.
	QuorumProtocol = quorum.Protocol
	// PaxosProtocol is the §2.1 Backup.
	PaxosProtocol = paxos.Protocol
)

// NewNetwork creates a simulator.
func NewNetwork(cfg NetConfig) *Network { return msgnet.New(cfg) }

// NewConsensus wires a composed consensus object (e.g. Quorum + Paxos)
// into a network.
func NewConsensus(net *Network, clients, servers []ProcID, phases ...PhaseProtocol) (*ConsensusObject, error) {
	return mpcons.Build(net, clients, servers, phases...)
}

// NewQuorumBackupConsensus wires the paper's §2.1 composition with
// default protocol parameters.
func NewQuorumBackupConsensus(net *Network, clients, servers []ProcID) (*ConsensusObject, error) {
	return mpcons.Build(net, clients, servers, quorum.Protocol{}, paxos.Protocol{})
}

// State machine replication (E9, E12).
type (
	// SMRCluster is a single-log replicated-log deployment.
	SMRCluster = smr.Cluster
	// SMRConfig selects the fast path, protocol tuning and log
	// compaction.
	SMRConfig = smr.Config
	// SubmitResult describes one landed log command.
	SubmitResult = smr.SubmitResult
	// ShardedSMRCluster hash-partitions keyed commands across N
	// independent replicated logs sharing one simulated network, records
	// per-key histories and checks them linearizable per shard.
	ShardedSMRCluster = smr.ShardedCluster
	// ShardedSMRConfig parameterizes a sharded deployment.
	ShardedSMRConfig = smr.ShardedConfig
	// ShardedSMRStats aggregates submission outcomes across shards.
	ShardedSMRStats = smr.ShardedStats
	// SMRHistoryCheck summarizes a per-key linearizability pass.
	SMRHistoryCheck = smr.HistoryCheck
)

// NewSMR wires an SMR cluster into a network.
func NewSMR(net *Network, clients, servers []ProcID, cfg SMRConfig) (*SMRCluster, error) {
	return smr.Build(net, clients, servers, cfg)
}

// NewShardedSMR wires a sharded SMR cluster into a network: commands are
// routed to shards by key hash, each shard is an independent speculative
// replicated log, and per-key linearizability plus per-shard log
// agreement are checkable after the run (linearizability is local, so
// shard-by-shard checking loses no soundness).
func NewShardedSMR(net *Network, clients, servers []ProcID, cfg ShardedSMRConfig) (*ShardedSMRCluster, error) {
	return smr.BuildSharded(net, clients, servers, cfg)
}

// KV helpers for SMR logs.
var (
	// SetCmd encodes a KV write.
	SetCmd = smr.SetCmd
	// DelCmd encodes a KV delete.
	DelCmd = smr.DelCmd
	// GetCmd encodes a KV read with an occurrence tag.
	GetCmd = smr.GetCmd
	// CmdKey extracts the key a KV command operates on.
	CmdKey = smr.CmdKey
	// ShardOf maps a key to its shard.
	ShardOf = smr.ShardOf
	// ApplyKV folds a log into a map.
	ApplyKV = smr.ApplyKV
)

// ReplicatedObject is a linearizable object of an arbitrary ADT over
// speculative SMR — the §6 universal construction (see internal/uobj).
type ReplicatedObject = uobj.Object

// NewReplicatedObject builds a linearizable replicated object of ADT f:
// operations append to the replicated log and outputs are f's output
// function applied to the log prefix.
func NewReplicatedObject(net *Network, clients, servers []ProcID, f Folder, cfg SMRConfig) (*ReplicatedObject, error) {
	return uobj.Build(net, clients, servers, f, cfg)
}
