// Package speclin is the public API of this reproduction of
// "Speculative Linearizability" (Guerraoui, Kuncak, Losa; PLDI 2012).
//
// The package re-exports the building blocks a user composes:
//
//   - the trace model (Trace, Action, History) and abstract data types;
//   - the unified checking surface (checker API v2): one context-aware
//     Check(ctx, CheckSpec, trace, ...Option) deciding the paper's new
//     definition of linearizability, the classical one, or SLin(m,n),
//     plus incremental Sessions fed one action at a time;
//   - the phase-composition runtime (Phase, Composer) with the shared
//     memory phases of Figures 2 and 3 ready to plug in;
//   - the message-passing stack: simulated network, the Quorum fast path,
//     the Paxos backup, composed consensus objects and SMR clusters.
//
// # Checking a trace
//
// Name the ADT and property in a CheckSpec and call Check:
//
//	rep, err := speclin.Check(ctx,
//		speclin.CheckSpec{Folder: speclin.ConsensusADT}, tr,
//		speclin.WithBudget(1_000_000))
//	if err != nil { ... }                       // budget/cancellation: verdict Unknown
//	ok := rep.Verdict == speclin.Linearizable
//
// For SLin(m,n) set Mode, RInit and the phase range:
//
//	rep, err = speclin.Check(ctx, speclin.CheckSpec{
//		Folder: speclin.ConsensusADT, Mode: speclin.SLin,
//		RInit: speclin.ConsensusRInit, M: 2, N: 3,
//	}, tr.ProjectSig(2, 3))
//
// A Session checks a growing trace incrementally — feed actions as the
// system produces them instead of buffering a post-hoc history:
//
//	sess, _ := speclin.NewSession(ctx, speclin.CheckSpec{Folder: speclin.RegisterADT})
//	for _, a := range actions { _ = sess.Feed(a) }
//	rep, _ := sess.Report()
//
// WithWorkers(n) for n > 1 parallelizes inside one check; WithMemoLimit
// bounds checker memory; WithPOR (on by default) toggles the sleep-set
// partial-order reduction over the search's extension branches, with
// Report.Pruned accounting for the skipped work (DESIGN.md, decision
// 12). The v1 entry points (CheckLinearizable,
// CheckClassicallyLinearizable, CheckSpeculativelyLinearizable) remain as
// deprecated shims over this surface.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the map from the paper's sections to packages (decision
// 11 records the API-v2 rationale and deprecation policy).
package speclin

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/cascons"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/rcons"
	"repro/internal/slin"
	"repro/internal/smr"
	"repro/internal/trace"
	"repro/internal/uobj"
)

// Trace model.
type (
	// Trace is a finite sequence of interface actions (§3).
	Trace = trace.Trace
	// Action is an invocation, response or switch event.
	Action = trace.Action
	// History is a sequence of ADT inputs (§4.4).
	History = trace.History
	// ClientID identifies a client process.
	ClientID = trace.ClientID
	// Value is an opaque input/output/switch value.
	Value = trace.Value
)

// Action constructors.
var (
	// Invoke builds inv(c, phase, in).
	Invoke = trace.Invoke
	// Response builds res(c, phase, in, out).
	Response = trace.Response
	// SwitchAction builds swi(c, phase, in, v).
	SwitchAction = trace.Switch
)

// Abstract data types (Definition 4).
type (
	// ADT is a data type given by its output function.
	ADT = adt.ADT
	// Folder is an ADT with a canonical state machine.
	Folder = adt.Folder
)

// Built-in ADTs.
var (
	// ConsensusADT is Figure 1's consensus (inputs p:v, outputs d:v).
	ConsensusADT = adt.Consensus{}
	// RegisterADT is a read/write register.
	RegisterADT = adt.Register{}
	// CounterADT is a fetch-and-increment counter.
	CounterADT = adt.Counter{}
	// QueueADT is a FIFO queue.
	QueueADT = adt.Queue{}
	// MutexADT is a mutual-exclusion lock.
	MutexADT = adt.Mutex{}
	// StackADT is a LIFO stack.
	StackADT = adt.Stack{}
	// SetADT is an add/remove/has membership set.
	SetADT = adt.Set{}
	// UniversalADT is §6's identity-output ADT.
	UniversalADT = adt.Universal{}
)

// Consensus value helpers.
var (
	// ProposeInput builds the consensus input p(v).
	ProposeInput = adt.ProposeInput
	// DecideOutput builds the consensus output d(v).
	DecideOutput = adt.DecideOutput
	// TagInput attaches an occurrence tag to an input (repeated events).
	TagInput = adt.Tag
)

// Checking (checker API v2; §4, §5, Appendix A — DESIGN.md, decision 11).
//
// One context-aware entry point, Check, decides all three properties; a
// CheckSpec names the ADT and the property (Mode), functional options
// tune the search, and every call returns one Report. NewSession opens an
// incremental check that is fed actions one at a time.

// Mode selects the property a Check decides.
type Mode int

const (
	// Lin is the paper's new definition of linearizability
	// (Definitions 5–15).
	Lin Mode = iota
	// ClassicalLin is the classical Herlihy–Wing definition as
	// formalized in Appendix A; by Theorem 1 it agrees with Lin on
	// unique-input traces. Checks are uncapped: traces of any length
	// decide (the former 63-operation representation cap fell with the
	// sparse placed-set engine, DESIGN.md decision 13).
	ClassicalLin
	// SLin is speculative linearizability SLin(m,n) (Definition 36);
	// the CheckSpec must carry RInit and the phase range M, N.
	SLin
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Lin:
		return "lin"
	case ClassicalLin:
		return "classical"
	case SLin:
		return "slin"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CheckSpec names what a Check decides: the ADT, the property mode, and —
// for SLin — the interpretation relation and phase range.
//
// ADT-specialized fast paths (DESIGN.md, decision 15). For some folders
// Check and NewSession dispatch to near-linear specialized checkers
// instead of the exact search engines, transparently falling back to
// the exact engines the moment a trace leaves the specialized fragment
// (verdicts agree either way; WithExact forces the exact engines):
//
//   - RegisterADT — one-shot Lin checks and Lin/SLin(1,n) sessions
//     (Gibbons–Korach interval analysis; distinct write values and
//     distinct input strings).
//   - ConsensusADT — one-shot Lin checks and Lin/SLin(1,n) sessions
//     (single-decision analysis; distinct input strings).
//   - QueueADT — one-shot Lin checks only (matched enqueue/dequeue
//     segments; complete traces, distinct enqueue values, no empty
//     dequeues); positive verdicts carry a witness up to a size cap.
//   - MutexADT — one-shot Lin checks and Lin/SLin(1,n) sessions
//     (greedy alternation simulation plus counting rejects; distinct
//     input strings, all-"ok:" outputs).
//   - StackADT — one-shot Lin checks and Lin/SLin(1,n) sessions
//     (greedy LIFO simulation; distinct push values and input strings,
//     no empty pops).
//
// Everything else — other folders, SLin with M > 1, ClassicalLin, SLin
// one-shot checks — always runs the exact engines.
type CheckSpec struct {
	// Folder is the ADT the trace is checked against.
	Folder Folder
	// Mode selects the property (Lin by default).
	Mode Mode
	// RInit is the r_init interpretation relation (SLin only).
	RInit RInit
	// M, N delimit the speculation phase range (SLin only; 1 ≤ M < N).
	M, N int
}

// Functional options shared by Check, NewSession and the batch checkers.
type Option = check.Option

var (
	// WithBudget bounds the search to n nodes; exhausting it yields
	// verdict Unknown with ErrBudget/ErrSLinBudget.
	WithBudget = check.WithBudget
	// WithWorkers sets intra-check parallelism: n > 1 runs the breadth
	// (frontier) engine — the engine Sessions use — with n workers
	// inside one check, so a single pathological trace uses all cores.
	// 0 or 1 keeps the sequential depth-first engine.
	WithWorkers = check.WithWorkers
	// WithWitness toggles witness assembly on positive verdicts
	// (default on).
	WithWitness = check.WithWitness
	// WithMemoLimit bounds the checker's memo structures, in entries.
	WithMemoLimit = check.WithMemoLimit
	// WithTemporalAbortOrder selects the temporal Abort-Order reading
	// of the SLin checker (see the slin package documentation).
	WithTemporalAbortOrder = check.WithTemporalAbortOrder
	// WithPOR toggles the sleep-set partial-order reduction over the
	// engines' extension branch sets (default on; DESIGN.md decision
	// 12). The reduction is verdict- and witness-preserving; turning it
	// off retains the unreduced reference searches, which the
	// differential tests cross-check against the reduced ones.
	WithPOR = check.WithPOR
	// WithExact forces the exact search engines on entry points that
	// would otherwise dispatch to an ADT-specialized fast-path checker
	// (see CheckSpec; DESIGN.md decision 15). Verdicts never depend on
	// it — it trades the fast paths' speed for the exact engines' node
	// accounting and witness generality.
	WithExact = check.WithExact
	// WithCompaction toggles frontier compaction in the streaming
	// (Session) engines (default on; DESIGN.md decision 17):
	// configurations drop fully-claimed chain prefixes from storage,
	// keeping a rolling digest so memo identity is preserved, which
	// bounds a session's memory by the trace's alphabet and operation
	// overlap instead of its length. Verdict-preserving; turning it off
	// retains the uncompacted reference representation, which the
	// differential tests cross-check against the compacted one.
	WithCompaction = check.WithCompaction
	// WithFeedBudget rebases a Session's search budget at every Feed
	// instead of spending one budget across the session's lifetime, so a
	// heavy-tailed action cannot starve every later feed into spurious
	// budget errors. One-shot checks ignore it.
	WithFeedBudget = check.WithFeedBudget
)

// Verdict is the three-valued outcome of a check.
type Verdict = check.Verdict

// Verdict values.
const (
	// Linearizable: the property holds.
	Linearizable = check.Linearizable
	// NotLinearizable: the property was refuted.
	NotLinearizable = check.NotLinearizable
	// Unknown: the check did not complete (budget, memo limit,
	// cancellation); reported only alongside an error.
	Unknown = check.Unknown
)

// Report is the unified result of a Check or Session.
type Report struct {
	// Verdict is the three-valued outcome.
	Verdict Verdict
	// Reason documents a NotLinearizable verdict.
	Reason string
	// Witness holds a linearization function on positive Lin verdicts
	// (commit histories by response index).
	Witness LinWitness
	// Sequential holds the reordering witness on positive ClassicalLin
	// verdicts.
	Sequential Linearization
	// SLinWitnesses holds one witness per init-interpretation
	// combination on positive SLin verdicts (depth-first engine only).
	SLinWitnesses []SLinWitness
	// FailedInit holds the failing init interpretation on negative SLin
	// verdicts, when the failure is interpretation-specific.
	FailedInit map[int]History
	// Nodes is the number of search nodes spent (comparable across
	// modes and engines). Together with Pruned it accounts for the
	// partial-order reduction: every pruned branch is a subtree the
	// unreduced search would have spent nodes on.
	Nodes int
	// Pruned is the number of extension branches the partial-order
	// reduction skipped (0 with WithPOR(false); always 0 for
	// ClassicalLin, whose search has no extension branch structure).
	Pruned int
	// Wall is the wall-clock duration of the check.
	Wall time.Duration
}

// Witness and result types of the underlying checkers.
type (
	// LinWitness is a linearization function restricted to commit
	// indices.
	LinWitness = lin.Witness
	// Linearization is the classical sequential-reordering witness.
	Linearization = lin.Linearization
	// SLinWitness is one SLin witness (init interpretation, commit
	// histories, abort histories).
	SLinWitness = slin.Witness
	// LinResult is the lin checkers' native result form.
	LinResult = lin.Result
	// SLinResult is the SLin checker's native result form.
	SLinResult = slin.Result
)

// Checker error sentinels (match with errors.Is).
var (
	// ErrBudget reports that a lin check exceeded its search budget:
	// the verdict is Unknown, and a larger WithBudget may decide it.
	ErrBudget = lin.ErrBudget
	// ErrMemo reports that a breadth-engine frontier exceeded
	// WithMemoLimit.
	ErrMemo = lin.ErrMemo
	// ErrTooManyOps reported a ClassicalLin trace beyond the former
	// 63-operation representation cap.
	//
	// Deprecated: ClassicalLin checks are uncapped since the sparse
	// placed-set engine (DESIGN.md, decision 13); the sentinel never
	// fires and survives only so external errors.Is guards compile.
	ErrTooManyOps = lin.ErrTooManyOps
	// ErrSLinBudget is ErrBudget's counterpart for the SLin checker.
	ErrSLinBudget = slin.ErrBudget
	// ErrSLinMemo is ErrMemo's counterpart for the SLin checker.
	ErrSLinMemo = slin.ErrMemo
)

// Interpretation relations for the built-in case studies.
type RInit = slin.RInit

var (
	// ConsensusRInit interprets switch value v as histories starting
	// with p(v) (§2.4).
	ConsensusRInit = slin.ConsensusRInit{}
	// UniversalRInit maps an encoded history to itself (§6).
	UniversalRInit = slin.UniversalRInit{}
)

// Check decides spec's property for trace t. It is context-aware —
// cancellation or a context deadline aborts the search with the context's
// error and verdict Unknown — and configured by functional options. On
// budget or memo exhaustion the Report carries verdict Unknown alongside
// the sentinel error.
func Check(ctx context.Context, spec CheckSpec, t Trace, opts ...Option) (Report, error) {
	start := time.Now()
	var rep Report
	var err error
	switch spec.Mode {
	case Lin:
		var r lin.Result
		r, err = lin.CheckFast(ctx, spec.Folder, t, opts...)
		rep = Report{Verdict: linVerdict(r, err), Reason: r.Reason, Witness: r.Witness, Nodes: r.Nodes, Pruned: r.Pruned}
	case ClassicalLin:
		var r lin.Result
		r, err = lin.CheckClassical(ctx, spec.Folder, t, opts...)
		rep = Report{Verdict: linVerdict(r, err), Reason: r.Reason, Sequential: r.Sequential, Nodes: r.Nodes}
	case SLin:
		var r slin.Result
		r, err = slin.Check(ctx, spec.Folder, spec.RInit, spec.M, spec.N, t, opts...)
		rep = Report{Verdict: linVerdict(lin.Result{OK: r.OK}, err), Reason: r.Reason,
			SLinWitnesses: r.Witnesses, FailedInit: r.FailedInit, Nodes: r.Nodes, Pruned: r.Pruned}
	default:
		return Report{}, fmt.Errorf("speclin: unknown check mode %v", spec.Mode)
	}
	rep.Wall = time.Since(start)
	return rep, err
}

// linVerdict maps a native result/error pair to the three-valued verdict.
func linVerdict(r lin.Result, err error) Verdict {
	switch {
	case err != nil:
		return Unknown
	case r.OK:
		return Linearizable
	default:
		return NotLinearizable
	}
}

// Session is an incremental check: actions are fed one at a time and the
// growing trace is re-checked from persistent search state instead of
// from scratch (lin.Session / slin.Session document the engine). Sessions
// exist for Lin and SLin; ClassicalLin has no per-action search structure
// (use Lin — Theorem 1 gives agreement on unique-input traces).
type Session struct {
	mode  Mode
	start time.Time
	lin   *lin.Session
	slin  *slin.Session
}

// NewSession opens an incremental check of an initially empty trace.
func NewSession(ctx context.Context, spec CheckSpec, opts ...Option) (*Session, error) {
	s := &Session{mode: spec.Mode, start: time.Now()}
	switch spec.Mode {
	case Lin:
		s.lin = lin.NewSessionFast(ctx, spec.Folder, opts...)
	case SLin:
		sl, err := slin.NewSessionFast(ctx, spec.Folder, spec.RInit, spec.M, spec.N, opts...)
		if err != nil {
			return nil, err
		}
		s.slin = sl
	case ClassicalLin:
		return nil, fmt.Errorf("speclin: ClassicalLin has no incremental session; use Lin (Theorem 1)")
	default:
		return nil, fmt.Errorf("speclin: unknown check mode %v", spec.Mode)
	}
	return s, nil
}

// Feed appends one action to the trace under check. Errors (budget/memo
// exhaustion, cancellation, out-of-signature actions) are terminal;
// ill-formed traces yield a NotLinearizable verdict instead.
func (s *Session) Feed(a Action) error {
	if s.mode == Lin {
		return s.lin.Feed(a)
	}
	return s.slin.Feed(a)
}

// Report returns the verdict for the trace fed so far.
func (s *Session) Report() (Report, error) {
	var rep Report
	var err error
	if s.mode == Lin {
		var r lin.Result
		r, err = s.lin.Result()
		rep = Report{Verdict: linVerdict(r, err), Reason: r.Reason, Witness: r.Witness, Nodes: r.Nodes, Pruned: r.Pruned}
	} else {
		var r slin.Result
		r, err = s.slin.Result()
		rep = Report{Verdict: linVerdict(lin.Result{OK: r.OK}, err), Reason: r.Reason,
			FailedInit: r.FailedInit, Nodes: r.Nodes, Pruned: r.Pruned}
	}
	rep.Wall = time.Since(s.start)
	return rep, err
}

// Deprecated v1 surface. The three disjoint entry points below and their
// Options structs are retained as thin shims over Check; new code should
// use Check/NewSession with a CheckSpec and functional options. The shims
// run with the same defaults as v1 (sequential engine, witnesses on).

// LinOptions configures the v1 linearizability shims.
//
// Deprecated: use Check with WithBudget/WithWorkers.
type LinOptions struct {
	// Budget bounds the search; 0 means the checker default.
	Budget int
	// Workers sizes the batch worker pool of the v1 batch entry points;
	// the single-trace shims ignore it.
	Workers int
}

// SLinOptions configures the v1 SLin shim.
//
// Deprecated: use Check with WithBudget/WithWorkers and
// WithTemporalAbortOrder.
type SLinOptions struct {
	Budget             int
	Workers            int
	TemporalAbortOrder bool
}

// CheckLinearizable decides the paper's new definition of
// linearizability (Definitions 5–15).
//
// Deprecated: use Check(ctx, CheckSpec{Folder: f, Mode: Lin}, t, ...).
func CheckLinearizable(f Folder, t Trace, opts LinOptions) (LinResult, error) {
	return lin.Check(context.Background(), f, t, WithBudget(opts.Budget))
}

// CheckClassicallyLinearizable decides the classical definition
// (Appendix A); by Theorem 1 the two agree on unique-input traces.
//
// Deprecated: use Check(ctx, CheckSpec{Folder: f, Mode: ClassicalLin}, t, ...).
func CheckClassicallyLinearizable(f Folder, t Trace, opts LinOptions) (LinResult, error) {
	return lin.CheckClassical(context.Background(), f, t, WithBudget(opts.Budget))
}

// CheckSpeculativelyLinearizable decides SLin(m,n) (Definition 36).
//
// Deprecated: use Check(ctx, CheckSpec{Folder: f, Mode: SLin, RInit: r, M: m, N: n}, t, ...).
func CheckSpeculativelyLinearizable(f Folder, r RInit, m, n int, t Trace, opts SLinOptions) (SLinResult, error) {
	return slin.Check(context.Background(), f, r, m, n, t,
		WithBudget(opts.Budget), WithTemporalAbortOrder(opts.TemporalAbortOrder))
}

// Phase composition runtime (§2.3, §5.1).
type (
	// Phase is one speculation phase of a concurrent object.
	Phase = core.Phase
	// Outcome is a phase's resolution of an operation.
	Outcome = core.Outcome
	// Composer chains phases 1..n into one object.
	Composer = core.Composer
)

// Outcome constructors for Phase implementations.
var (
	// ReturnOutcome resolves an operation with a response.
	ReturnOutcome = core.ReturnOutcome
	// SwitchOutcome aborts an operation to the next phase.
	SwitchOutcome = core.SwitchOutcome
)

// NewObject composes speculation phases into a concurrent object whose
// trace is recorded for post-hoc checking.
func NewObject(phases ...Phase) (*Composer, error) { return core.NewComposer(phases...) }

// NewSharedMemoryConsensus builds the §2.5 object: the register-based
// RCons fast path (Figure 2) composed with the CAS-based CASCons backup
// (Figure 3), over native atomics. Inputs are consensus proposals
// (ProposeInput, optionally tagged); outputs are decisions.
func NewSharedMemoryConsensus() (*Composer, error) {
	return core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
}

// Message-passing stack (§2.1).
type (
	// Network is the deterministic discrete-event network simulator.
	Network = msgnet.Network
	// NetConfig parameterizes the network (seed, delays, loss, dup).
	NetConfig = msgnet.Config
	// ProcID identifies a simulated process.
	ProcID = msgnet.ProcID
	// VTime is virtual time in message-delay units.
	VTime = msgnet.Time
	// ConsensusObject is a composed message-passing consensus object.
	ConsensusObject = mpcons.Object
	// OpResult describes one completed consensus operation.
	OpResult = mpcons.OpResult
	// PhaseProtocol is a message-passing speculation phase.
	PhaseProtocol = mpcons.PhaseProtocol
	// QuorumProtocol is the §2.1 fast path.
	QuorumProtocol = quorum.Protocol
	// PaxosProtocol is the §2.1 Backup.
	PaxosProtocol = paxos.Protocol
)

// NewNetwork creates a simulator.
func NewNetwork(cfg NetConfig) *Network { return msgnet.New(cfg) }

// NewConsensus wires a composed consensus object (e.g. Quorum + Paxos)
// into a network.
func NewConsensus(net *Network, clients, servers []ProcID, phases ...PhaseProtocol) (*ConsensusObject, error) {
	return mpcons.Build(net, clients, servers, phases...)
}

// NewQuorumBackupConsensus wires the paper's §2.1 composition with
// default protocol parameters.
func NewQuorumBackupConsensus(net *Network, clients, servers []ProcID) (*ConsensusObject, error) {
	return mpcons.Build(net, clients, servers, quorum.Protocol{}, paxos.Protocol{})
}

// State machine replication (E9, E12).
type (
	// SMRCluster is a single-log replicated-log deployment.
	SMRCluster = smr.Cluster
	// SMRConfig selects the fast path, protocol tuning and log
	// compaction.
	SMRConfig = smr.Config
	// SubmitResult describes one landed log command.
	SubmitResult = smr.SubmitResult
	// ShardedSMRCluster hash-partitions keyed commands across N
	// independent replicated logs sharing one simulated network, records
	// per-key histories and checks them linearizable per shard.
	ShardedSMRCluster = smr.ShardedCluster
	// ShardedSMRConfig parameterizes a sharded deployment.
	ShardedSMRConfig = smr.ShardedConfig
	// ShardedSMRStats aggregates submission outcomes across shards.
	ShardedSMRStats = smr.ShardedStats
	// SMRHistoryCheck summarizes a per-key linearizability pass.
	SMRHistoryCheck = smr.HistoryCheck
)

// NewSMR wires an SMR cluster into a network.
func NewSMR(net *Network, clients, servers []ProcID, cfg SMRConfig) (*SMRCluster, error) {
	return smr.Build(net, clients, servers, cfg)
}

// NewShardedSMR wires a sharded SMR cluster into a network: commands are
// routed to shards by key hash, each shard is an independent speculative
// replicated log, and per-key linearizability plus per-shard log
// agreement are checkable after the run (linearizability is local, so
// shard-by-shard checking loses no soundness).
func NewShardedSMR(net *Network, clients, servers []ProcID, cfg ShardedSMRConfig) (*ShardedSMRCluster, error) {
	return smr.BuildSharded(net, clients, servers, cfg)
}

// KV helpers for SMR logs.
var (
	// SetCmd encodes a KV write.
	SetCmd = smr.SetCmd
	// DelCmd encodes a KV delete.
	DelCmd = smr.DelCmd
	// GetCmd encodes a KV read with an occurrence tag.
	GetCmd = smr.GetCmd
	// CmdKey extracts the key a KV command operates on.
	CmdKey = smr.CmdKey
	// ShardOf maps a key to its shard.
	ShardOf = smr.ShardOf
	// ApplyKV folds a log into a map.
	ApplyKV = smr.ApplyKV
)

// ReplicatedObject is a linearizable object of an arbitrary ADT over
// speculative SMR — the §6 universal construction (see internal/uobj).
type ReplicatedObject = uobj.Object

// NewReplicatedObject builds a linearizable replicated object of ADT f:
// operations append to the replicated log and outputs are f's output
// function applied to the log prefix.
func NewReplicatedObject(net *Network, clients, servers []ProcID, f Folder, cfg SMRConfig) (*ReplicatedObject, error) {
	return uobj.Build(net, clients, servers, f, cfg)
}
