// The machine-readable summary for the runtime capture harness
// (ISSUE 8): TestWriteBench7JSON runs the E17 capture hunt — real
// concurrent Go structures (sync.Map, sync.Mutex, lazy-list set,
// Michael–Scott queue) stressed under recording goroutines, their
// captured histories checked live, every seeded-bug mutant flagged
// non-linearizable — plus the capture-overhead measurement, and records
// BENCH_7.json.
package speclin_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// bench7Full opts into the full-scale E17 hunt (and the artifact
// write). The nightly bench job passes it; plain `go test .` runs a
// scaled-down smoke with the same assertions.
var bench7Full = flag.Bool("bench7-full", false,
	"run the full-scale E17 capture hunt and write BENCH_7.json")

type bench7Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		Goroutines  int `json:"goroutines"`
		Ops         int `json:"ops_per_goroutine"`
		Keys        int `json:"keys"`
		Rounds      int `json:"mutant_rounds"`
		OverheadOps int `json:"overhead_ops_per_goroutine"`
	} `json:"config"`
	Hunts    []experiments.CaptureHuntRow     `json:"capture_hunt"`
	Overhead []experiments.CaptureOverheadRow `json:"capture_overhead"`
}

// checkHuntRows asserts the E17 invariants at any scale: clean
// structures check linearizable live (with the classical cross-check
// agreeing when run), mutants are caught, and the queue records no
// empty dequeues on clean runs.
func checkHuntRows(t *testing.T, rows []experiments.CaptureHuntRow, classical bool) {
	t.Helper()
	if len(rows) != 8 {
		t.Fatalf("got %d hunt rows, want 8 (4 structures × clean+mutant)", len(rows))
	}
	for _, r := range rows {
		if r.Mutant == "" {
			if !r.Linearizable {
				t.Errorf("%s: clean run not linearizable", r.Name)
			}
			if classical && !r.ClassicalAgrees {
				t.Errorf("%s: classical pass disagrees with live verdict", r.Name)
			}
			if r.EmptyDeqs != 0 {
				t.Errorf("%s: %d empty dequeues on a clean run", r.Name, r.EmptyDeqs)
			}
		} else if !r.Caught {
			t.Errorf("%s: mutant not caught", r.Name)
		}
	}
}

// TestWriteBench7JSON regenerates BENCH_7.json under -bench7-full. By
// default — and always under -short or the race detector — it runs a
// scaled-down smoke hunt with the same verdict assertions and leaves
// the recorded artifact untouched.
func TestWriteBench7JSON(t *testing.T) {
	ctx := context.Background()
	if !*bench7Full || raceEnabled || testing.Short() {
		rows, err := experiments.E17HuntRows(ctx, 8, 300, 8, experiments.E17Rounds, true)
		if err != nil {
			t.Fatal(err)
		}
		checkHuntRows(t, rows, true)
		t.Log("smoke mode (no -bench7-full): BENCH_7.json left untouched")
		return
	}

	g := experiments.E17Goroutines()
	hunts, err := experiments.E17HuntRows(ctx, g, experiments.E17Ops, experiments.E17Keys,
		experiments.E17Rounds, true)
	if err != nil {
		t.Fatal(err)
	}
	checkHuntRows(t, hunts, true)
	if g < 4*runtime.GOMAXPROCS(0) {
		t.Errorf("hunted with %d goroutines (acceptance floor 4×GOMAXPROCS = %d)",
			g, 4*runtime.GOMAXPROCS(0))
	}
	overhead, err := experiments.E17OverheadRows(g, experiments.E17OverheadOps, experiments.E17Keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range overhead {
		if o.RawNsPerOp <= 0 || o.CapturedNsPerOp <= 0 || o.CaptureThroughputRatio <= 0 {
			t.Errorf("%s: implausible overhead row %+v", o.Name, o)
		}
		t.Logf("%-14s raw %.0f ns/op, captured %.0f ns/op, ratio %.3f",
			o.Name, o.RawNsPerOp, o.CapturedNsPerOp, o.CaptureThroughputRatio)
	}

	sum := bench7Summary{
		Issue: 8,
		Description: "Runtime capture harness: real concurrent Go structures stressed under " +
			"recording goroutines, captured histories checked linearizable live, seeded-bug " +
			"mutants flagged non-linearizable, recording overhead vs uninstrumented loops",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hunts:      hunts,
		Overhead:   overhead,
	}
	sum.Config.Goroutines = g
	sum.Config.Ops = experiments.E17Ops
	sum.Config.Keys = experiments.E17Keys
	sum.Config.Rounds = experiments.E17Rounds
	sum.Config.OverheadOps = experiments.E17OverheadOps

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_7.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_7.json")
}
