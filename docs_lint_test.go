// The docs gate (ISSUE 10): the top-level markdown files cross-link
// each other, name committed BENCH_*.json artifacts, and cite DESIGN.md
// decisions and EXPERIMENTS.md experiment IDs by number. All of those
// references rot silently — a renamed file, a renumbered decision, an
// artifact that was never committed — so this test resolves every one
// of them against the working tree. It runs in the ordinary test suite
// and as its own step in the PR CI gate.
package speclin_test

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docFiles are the user-facing markdown files whose references are
// linted. ISSUE.md, PAPER.md, PAPERS.md and SNIPPETS.md are inputs to
// the growth process, not documentation of the repo, so they are
// exempt.
var docFiles = []string{
	"README.md",
	"ARCHITECTURE.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"CHANGES.md",
}

var (
	// [text](target) — inline markdown links. Images and bare URLs are
	// rare enough here that one pattern covers the corpus.
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// BENCH_3.json — artifact references by exact file name.
	benchRef = regexp.MustCompile(`BENCH_[0-9]+\.json`)
	// "DESIGN.md decision 17", "decisions 1–18" — decision citations.
	decisionRef = regexp.MustCompile(`[Dd]ecisions? ([0-9]+)(?:[–-]([0-9]+))?`)
	// Decision-log entries: "17. **title**" at the start of a line.
	decisionDef = regexp.MustCompile(`(?m)^([0-9]+)\. \*\*`)
	// E-IDs like E12 (E6b normalizes to E6 for existence purposes).
	expRef = regexp.MustCompile(`\bE([0-9]+)b?\b`)
	// Index rows: "| E12 | title | ..." in EXPERIMENTS.md.
	expDef = regexp.MustCompile(`(?m)^\| (E[0-9]+b?) \|`)
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("doc file missing: %v", err)
	}
	return string(b)
}

// stripCode removes fenced code blocks so command examples (which may
// mention hypothetical paths) don't trip the link lint.
func stripCode(s string) string {
	var out strings.Builder
	in := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			in = !in
			continue
		}
		if !in {
			out.WriteString(line)
			out.WriteString("\n")
		}
	}
	return out.String()
}

// TestDocLinksResolve checks every relative markdown link in the doc
// files points at an existing file or directory in the repo.
func TestDocLinksResolve(t *testing.T) {
	for _, name := range docFiles {
		body := stripCode(readDoc(t, name))
		for _, m := range mdLink.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") {
				continue // external URL or same-file anchor
			}
			target = strings.SplitN(target, "#", 2)[0] // drop anchors
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: broken link target %q", name, m[1])
			}
		}
	}
}

// TestDocBenchArtifactsExist checks every BENCH_*.json named anywhere
// in the doc files is actually committed at the repo root, and
// conversely that every committed artifact is documented in
// EXPERIMENTS.md.
func TestDocBenchArtifactsExist(t *testing.T) {
	named := map[string][]string{}
	for _, name := range docFiles {
		for _, ref := range benchRef.FindAllString(readDoc(t, name), -1) {
			named[ref] = append(named[ref], name)
		}
	}
	for ref, srcs := range named {
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("%s named in %s but not committed", ref, strings.Join(srcs, ", "))
		}
	}
	matches, err := filepathGlob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	exp := readDoc(t, "EXPERIMENTS.md")
	for _, f := range matches {
		if !strings.Contains(exp, f) {
			t.Errorf("committed artifact %s is not documented in EXPERIMENTS.md", f)
		}
	}
}

// filepathGlob is a tiny indirection so the test reads without an
// import rename (path/filepath.Glob matches only the repo root here).
func filepathGlob(pattern string) ([]string, error) {
	ents, err := os.ReadDir(".")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if ok, _ := pathMatch(pattern, e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

func pathMatch(pattern, name string) (bool, error) {
	// pattern is BENCH_*.json; a prefix/suffix check is all we need and
	// avoids path.Match's escaping rules.
	pre, suf, _ := strings.Cut(pattern, "*")
	return strings.HasPrefix(name, pre) && strings.HasSuffix(name, suf), nil
}

// TestDocDecisionRefsResolve checks every "DESIGN.md decision N"
// citation (in docs and in Go sources) stays within the decision log.
func TestDocDecisionRefsResolve(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	_, log, found := strings.Cut(design, "## Decisions")
	if !found {
		t.Fatal("DESIGN.md has no '## Decisions' section")
	}
	log, _, _ = strings.Cut(log, "## Ablations")
	max := 0
	for _, m := range decisionDef.FindAllStringSubmatch(log, -1) {
		if n, _ := strconv.Atoi(m[1]); n > max {
			max = n
		}
	}
	if max == 0 {
		t.Fatal("no numbered decisions found in DESIGN.md")
	}
	for _, name := range docFiles {
		body := readDoc(t, name)
		for _, m := range decisionRef.FindAllStringSubmatch(body, -1) {
			for _, g := range m[1:] {
				if g == "" {
					continue
				}
				if n, _ := strconv.Atoi(g); n < 1 || n > max {
					t.Errorf("%s cites decision %s; DESIGN.md has 1–%d", name, g, max)
				}
			}
		}
	}
}

// TestDocExperimentRefsResolve checks every E-ID cited in README and
// ARCHITECTURE appears in the EXPERIMENTS.md index table.
func TestDocExperimentRefsResolve(t *testing.T) {
	exp := readDoc(t, "EXPERIMENTS.md")
	defined := map[string]bool{}
	maxE := 0
	for _, m := range expDef.FindAllStringSubmatch(exp, -1) {
		defined[m[1]] = true
		if n, _ := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(m[1], "E"), "b")); n > maxE {
			maxE = n
		}
	}
	if len(defined) == 0 {
		t.Fatal("no E-IDs found in the EXPERIMENTS.md index")
	}
	for _, name := range []string{"README.md", "ARCHITECTURE.md"} {
		body := stripCode(readDoc(t, name))
		for _, m := range expRef.FindAllStringSubmatch(body, -1) {
			n, _ := strconv.Atoi(m[1])
			if n < 1 || n > maxE {
				t.Errorf("%s cites %s; EXPERIMENTS.md indexes up to E%d", name, m[0], maxE)
			}
		}
	}
	// The README promises an E1–E19-style index; make sure the ranges
	// it quotes match reality so the quickstart never oversells.
	readme := readDoc(t, "README.md")
	want := fmt.Sprintf("E1–E%d", maxE)
	if !strings.Contains(readme, want) {
		t.Errorf("README.md does not mention the %s index (EXPERIMENTS.md tops out at E%d)", want, maxE)
	}
}
