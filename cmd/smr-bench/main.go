// Command smr-bench drives the sharded SMR cluster: a keyed KV workload
// (uniform or zipf-skewed keys) hash-partitioned across N independent
// speculative replicated logs sharing one simulated network, with
// per-shard log agreement and per-key linearizability checked after the
// run (experiment E12 / BENCH_2.json).
//
// Usage:
//
//	smr-bench                          # one run with the defaults
//	smr-bench -shards 8 -commands 500000
//	smr-bench -sweep 1,2,4,8,16 -per-shard 62500 -json BENCH.json
//	smr-bench -zipf 1.2 -read-frac 0.5 -pace 0   # skewed, closed-loop
//	smr-bench -online                  # check per-key histories during the run
//	smr-bench -online -exact           # ... with the exact frontier engine
//	                                   # (default: register fast path, E16)
//	smr-bench -faults -online          # E15 chaos plan: rolling restarts,
//	                                   # partition, duplicating links (BENCH_5.json)
//	smr-bench -txn-frac 0.2 -online    # mixed workload with multi-key
//	                                   # transactions, component checking (E19)
//	smr-bench -txn-frac 0.2 -txn-faults -zipf 1.2   # ... under rolling
//	                                   # coordinator crash–restarts (BENCH_9.json)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/msgnet"
)

func main() {
	var (
		shards   = flag.Int("shards", 4, "number of shards (independent replicated logs)")
		commands = flag.Int("commands", 100_000, "total commands (single run)")
		sweep    = flag.String("sweep", "", "comma-separated shard counts; runs a weak-scaling sweep instead of a single run")
		perShard = flag.Int("per-shard", 62_500, "commands per shard in sweep mode")
		clients  = flag.Int("clients", 4, "client processes")
		servers  = flag.Int("servers", 3, "server processes")
		keys     = flag.Int("keys", 0, "distinct keys (0: commands/64)")
		readFrac = flag.Float64("read-frac", 0.3, "fraction of reads (negative: pure-write)")
		zipf     = flag.Float64("zipf", 0, "zipf key-skew exponent (must be > 1); 0 = uniform")
		pace     = flag.Int64("pace", 12, "per-client feed period in message delays (0: closed-loop burst at t=0)")
		seed     = flag.Int64("seed", 1, "workload and network seed")
		compact  = flag.Int("compact-every", 64, "log compaction window (0: off)")
		budget   = flag.Int("budget", 0, "per-history check budget (0: checker default)")
		noCheck  = flag.Bool("skip-check", false, "skip the per-key linearizability check")
		online   = flag.Bool("online", false, "stream per-key histories through incremental checker sessions during the run")
		exact    = flag.Bool("exact", false, "force the exact frontier engine on the online checker sessions (default: register fast path)")
		inject   = flag.Bool("faults", false, "inject the E15 chaos plan (rolling crash–recovery restarts, partition, duplicating links) and report fault metrics")
		retryTO  = flag.Int64("retry-timeout", 0, "client per-command retry timeout in delays with -faults (0: default 400)")
		dupProb  = flag.Float64("dup-prob", 0, "duplication probability of the faulty links with -faults (0: default 0.05)")
		timeout  = flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		jsonOut  = flag.String("json", "", "write results as JSON to this file")

		txnFrac    = flag.Float64("txn-frac", 0, "fraction of items that are multi-key transactions; > 0 selects the mixed transactional run (E19)")
		txnKeysMax = flag.Int("txn-keys-max", 0, "max keys per transaction (0: default 4)")
		txnKeys    = flag.Int("txn-keys", 0, "transactional key range: txns draw from the first N keys (0: all keys)")
		txnGroups  = flag.Int("txn-groups", 0, "key-groups partitioning the transactional range (0: one group)")
		casFrac    = flag.Float64("cas-frac", 0, "fraction of transactions that are CAS read-modify-writes (0: default 0.3; negative: none)")
		recoveryTO = flag.Int64("recovery-timeout", 0, "transaction recovery-watchdog timeout in delays (0: default 2000)")
		txnFaults  = flag.Bool("txn-faults", false, "inject rolling coordinator crash–restarts into the transactional run")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *zipf > 0 && *zipf <= 1 {
		fmt.Fprintln(os.Stderr, "smr-bench: -zipf must exceed 1 (use 0 for uniform)")
		os.Exit(2)
	}

	base := experiments.ShardRunConfig{
		Shards:       *shards,
		Commands:     *commands,
		Clients:      *clients,
		Servers:      *servers,
		Keys:         *keys,
		ReadFrac:     *readFrac,
		ZipfS:        *zipf,
		Pace:         msgnet.Time(*pace),
		Seed:         *seed,
		CompactEvery: *compact,
		Budget:       *budget,
		SkipCheck:    *noCheck,
		Online:       *online,
		Exact:        *exact,
	}

	if *txnFrac > 0 {
		if *sweep != "" || *inject {
			fmt.Fprintln(os.Stderr, "smr-bench: -txn-frac is mutually exclusive with -sweep and -faults")
			os.Exit(2)
		}
		tcfg := experiments.TxnRunConfig{
			ShardRunConfig:     base,
			TxnFrac:            *txnFrac,
			TxnKeysMax:         *txnKeysMax,
			TxnKeys:            *txnKeys,
			Groups:             *txnGroups,
			CASFrac:            *casFrac,
			RecoveryTimeout:    msgnet.Time(*recoveryTO),
			CoordinatorCrashes: *txnFaults,
		}
		r, err := experiments.RunTxn(ctx, tcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smr-bench: %v\n", err)
			os.Exit(1)
		}
		report(r.ShardRunResult)
		fmt.Printf("  txns: %d started  commit rate %.2f  aborts conflict/condition/recovery %d/%d/%d\n",
			r.TxnsStarted, r.CommitRate, r.AbortedConflict, r.AbortedCondition, r.AbortedRecovery)
		fmt.Printf("  components: %d merged histories (%d ops, largest %d) over %d entangled keys; %d fast-path keys\n",
			r.Components, r.ComponentOps, r.LargestComponent, r.ComponentKeys, r.FastPathKeys)
		if *jsonOut != "" {
			out, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fail(nil, err)
			}
			if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
				fail(nil, err)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	if *inject {
		if *sweep != "" {
			fmt.Fprintln(os.Stderr, "smr-bench: -faults and -sweep are mutually exclusive")
			os.Exit(2)
		}
		ccfg := experiments.ChaosConfig{
			ShardRunConfig: base,
			RetryTimeout:   msgnet.Time(*retryTO),
			DupProb:        *dupProb,
			Faults:         true,
		}
		r, err := experiments.RunChaos(ctx, ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smr-bench: %v\n", err)
			os.Exit(1)
		}
		report(r.ShardRunResult)
		recover := fmt.Sprintf("%d delays", r.TimeToRecover)
		if r.TimeToRecover < 0 {
			recover = "never"
		}
		fmt.Printf("  faults: fast-path before/during/after %.1f/%.1f/%.1f%%  recover %s  "+
			"retries=%d  dup msgs=%d\n",
			100*r.FastPathBefore, 100*r.FastPathDuring, 100*r.FastPathAfter,
			recover, r.Retries, r.DuplicatedMsgs)
		if *jsonOut != "" {
			out, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fail(nil, err)
			}
			if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
				fail(nil, err)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	var rows []experiments.ShardRunResult
	if *sweep != "" {
		var counts []int
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "smr-bench: bad -sweep entry %q\n", s)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		var err error
		rows, err = experiments.ShardSweep(ctx, counts, *perShard, base)
		if err != nil {
			fail(rows, err)
		}
	} else {
		r, err := experiments.RunSharded(ctx, base)
		if err != nil {
			fail(rows, err)
		}
		rows = append(rows, r)
	}

	for _, r := range rows {
		report(r)
	}
	if len(rows) > 1 {
		fmt.Printf("throughput scaling %d→%d shards: %.2fx\n",
			rows[0].Shards, rows[len(rows)-1].Shards,
			rows[len(rows)-1].CmdsPerDelay/rows[0].CmdsPerDelay)
	}
	if *jsonOut != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fail(nil, err)
		}
		if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			fail(nil, err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// report prints one run. Run wall and check wall are reported as
// separate figures: post hoc the check wall is the whole batch pass;
// with -online it is the per-feed-timed session overhead embedded in
// the run wall (plus verdict collection), so the fast path's win shows
// even though the run wall barely moves.
func report(r experiments.ShardRunResult) {
	check := "check skipped"
	if r.KeyHistories > 0 {
		how := "post-hoc"
		if r.Online {
			how = "online"
		}
		check = fmt.Sprintf("%d key histories linearizable (%s, %d ops); check wall=%.0fms",
			r.KeyHistories, how, r.CheckedOps, r.CheckWallMs)
	}
	fmt.Printf("shards=%-2d %-10s commands=%-8d sim=%d delays  %.3f cmds/delay  "+
		"fast-path=%.1f%%  latency=%.1f  run wall=%.0fms (%.0f cmds/s)\n  consistency ok; %s\n",
		r.Shards, r.Distribution, r.Commands, r.SimTime, r.CmdsPerDelay,
		100*r.FastPathRate, r.MeanLatency, r.WallMs, r.CmdsPerSecWall, check)
}

func fail(rows []experiments.ShardRunResult, err error) {
	for _, r := range rows {
		report(r)
	}
	fmt.Fprintf(os.Stderr, "smr-bench: %v\n", err)
	os.Exit(1)
}
