// Command slin-check decides linearizability or speculative
// linearizability of a JSON trace file.
//
// Usage:
//
//	slin-check -adt consensus trace.json                 # Lin (new def.)
//	slin-check -adt consensus -mode classical trace.json # Lin (classical)
//	slin-check -adt consensus -mode slin -m 1 -n 2 trace.json
//
// The trace format is a JSON array of actions:
//
//	[
//	  {"kind":"inv","client":"c1","phase":1,"input":"p:a"},
//	  {"kind":"res","client":"c1","phase":1,"input":"p:a","output":"d:a"},
//	  {"kind":"swi","client":"c2","phase":2,"input":"p:b","value":"a"}
//	]
//
// Exit status: 0 when the property holds, 1 when it does not, 2 on usage
// or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adt"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/trace"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func pickADT(name string) (adt.Folder, bool) {
	switch name {
	case "consensus":
		return adt.Consensus{}, true
	case "register":
		return adt.Register{}, true
	case "counter":
		return adt.Counter{}, true
	case "queue":
		return adt.Queue{}, true
	case "universal":
		return adt.Universal{}, true
	}
	return nil, false
}

func main() {
	adtName := flag.String("adt", "consensus", "abstract data type: consensus|register|counter|queue|universal")
	mode := flag.String("mode", "lin", "property: lin|classical|slin")
	m := flag.Int("m", 1, "slin: lower phase bound m")
	n := flag.Int("n", 2, "slin: upper phase bound n")
	temporal := flag.Bool("temporal", false, "slin: use the temporal Abort-Order variant")
	budget := flag.Int("budget", 0, "search budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fail(2, "usage: slin-check [flags] trace.json")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(2, "read: %v", err)
	}
	t, err := trace.DecodeJSON(raw)
	if err != nil {
		fail(2, "parse: %v", err)
	}
	f, ok := pickADT(*adtName)
	if !ok {
		fail(2, "unknown ADT %q", *adtName)
	}

	switch *mode {
	case "lin", "classical":
		var res lin.Result
		if *mode == "lin" {
			res, err = lin.Check(f, t, lin.Options{Budget: *budget})
		} else {
			res, err = lin.CheckClassical(f, t, lin.Options{Budget: *budget})
		}
		if err != nil {
			fail(2, "check: %v", err)
		}
		if res.OK {
			fmt.Println("linearizable")
			if len(res.Witness) > 0 {
				fmt.Println("witness (commit histories by response index):")
				for i := 0; i < len(t); i++ {
					if h, ok := res.Witness[i]; ok {
						fmt.Printf("  %3d: %v\n", i, h)
					}
				}
			}
			return
		}
		fmt.Printf("NOT linearizable: %s\n", res.Reason)
		os.Exit(1)
	case "slin":
		var rinit slin.RInit = slin.ConsensusRInit{}
		if *adtName == "universal" {
			rinit = slin.UniversalRInit{}
		}
		res, err := slin.Check(f, rinit, *m, *n, t, slin.Options{
			Budget:             *budget,
			TemporalAbortOrder: *temporal,
		})
		if err != nil {
			fail(2, "check: %v", err)
		}
		if res.OK {
			fmt.Printf("speculatively linearizable: SLin(%d,%d)\n", *m, *n)
			return
		}
		fmt.Printf("NOT SLin(%d,%d): %s\n", *m, *n, res.Reason)
		if res.FailedInit != nil {
			fmt.Println("failing init interpretation:")
			for i, h := range res.FailedInit {
				fmt.Printf("  action %d ↦ %v\n", i, h)
			}
		}
		os.Exit(1)
	default:
		fail(2, "unknown mode %q", *mode)
	}
}
