// Command slin-check decides linearizability or speculative
// linearizability of JSON trace files.
//
// Usage:
//
//	slin-check -adt consensus trace.json                 # Lin (new def.)
//	slin-check -adt consensus -mode classical trace.json # Lin (classical)
//	slin-check -adt consensus -mode slin -m 1 -n 2 trace.json
//	slin-check -adt consensus a.json b.json c.json       # batch, parallel
//	slin-check -adt consensus -check-workers 8 big.json  # parallel inside one check
//	slin-check -adt register -stream trace.json          # incremental Session
//	slin-check -adt register -exact trace.json           # force the exact engine
//	                                                     # (no ADT fast path)
//	slin-check -timeout 30s trace.json                   # context deadline
//	slin-check -por=false trace.json                     # unreduced reference engine
//
// With more than one trace file the independent checks are sharded across
// a worker pool (-workers, default GOMAXPROCS) and one verdict line is
// printed per file, prefixed with its name.
//
// The trace format is a JSON array of actions:
//
//	[
//	  {"kind":"inv","client":"c1","phase":1,"input":"p:a"},
//	  {"kind":"res","client":"c1","phase":1,"input":"p:a","output":"d:a"},
//	  {"kind":"swi","client":"c2","phase":2,"input":"p:b","value":"a"}
//	]
//
// Exit status: 0 when the property holds for every trace, 1 when some
// trace violates it, 2 on usage or input errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/trace"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func pickADT(name string) (adt.Folder, bool) {
	switch name {
	case "consensus":
		return adt.Consensus{}, true
	case "register":
		return adt.Register{}, true
	case "counter":
		return adt.Counter{}, true
	case "queue":
		return adt.Queue{}, true
	case "universal":
		return adt.Universal{}, true
	}
	return nil, false
}

// verdict is one file's check outcome: the report text and whether the
// property holds.
type verdict struct {
	ok     bool
	report string
}

func main() {
	adtName := flag.String("adt", "consensus", "abstract data type: consensus|register|counter|queue|universal")
	mode := flag.String("mode", "lin", "property: lin|classical|slin")
	m := flag.Int("m", 1, "slin: lower phase bound m")
	n := flag.Int("n", 2, "slin: upper phase bound n")
	temporal := flag.Bool("temporal", false, "slin: use the temporal Abort-Order variant")
	por := flag.Bool("por", true, "sleep-set partial-order reduction over extension branches (false = unreduced reference engines)")
	budget := flag.Int("budget", 0, "search budget (0 = default)")
	workers := flag.Int("workers", 0, "worker pool size for multi-file batches (0 = GOMAXPROCS)")
	inWorkers := flag.Int("check-workers", 0, "intra-trace workers: >1 runs the breadth engine inside each check")
	timeout := flag.Duration("timeout", 0, "overall deadline; exceeded checks report unknown (exit 2)")
	stream := flag.Bool("stream", false, "lin mode: feed each trace through an incremental Session instead of one-shot Check")
	exact := flag.Bool("exact", false, "force the exact search engines (skip the ADT-specialized fast-path checkers)")
	compact := flag.Bool("compact", true, "frontier compaction in the streaming engines (false = uncompacted reference representation)")
	feedBudget := flag.Bool("feed-budget", false, "stream mode: rebase the search budget at every fed action instead of one per-session budget")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if flag.NArg() < 1 {
		fail(2, "usage: slin-check [flags] trace.json [trace.json ...]")
	}
	f, ok := pickADT(*adtName)
	if !ok {
		fail(2, "unknown ADT %q", *adtName)
	}
	switch *mode {
	case "lin", "classical", "slin":
	default:
		fail(2, "unknown mode %q", *mode)
	}

	// Parse every file up front so usage errors (exit 2) are reported
	// before any verdict is printed.
	files := flag.Args()
	traces := make([]trace.Trace, len(files))
	for i, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			fail(2, "read: %v", err)
		}
		traces[i], err = trace.DecodeJSON(raw)
		if err != nil {
			fail(2, "parse %s: %v", name, err)
		}
	}

	var rinit slin.RInit = slin.ConsensusRInit{}
	if *adtName == "universal" {
		rinit = slin.UniversalRInit{}
	}

	// Shard the independent checks across the worker pool (checker API
	// v2: context-aware, functional options); verdicts come back in file
	// order.
	opts := []check.Option{check.WithBudget(*budget), check.WithWorkers(*inWorkers),
		check.WithPOR(*por), check.WithExact(*exact),
		check.WithCompaction(*compact), check.WithFeedBudget(*feedBudget)}
	verdicts, err := check.Parallel(ctx, traces, *workers, func(i int, t trace.Trace) (verdict, error) {
		switch *mode {
		case "lin", "classical":
			var res lin.Result
			var err error
			switch {
			case *mode == "lin" && *stream:
				// Incremental session: one action at a time, same verdict
				// as the one-shot check on every prefix.
				sess := lin.NewSessionFast(ctx, f, opts...)
				if err = sess.FeedAll(t); err == nil {
					res, err = sess.Result()
				}
			case *mode == "lin":
				res, err = lin.CheckFast(ctx, f, t, opts...)
			default:
				res, err = lin.CheckClassical(ctx, f, t, opts...)
			}
			if err != nil {
				return verdict{}, fmt.Errorf("%s: %w", files[i], err)
			}
			return linVerdict(t, res), nil
		default:
			res, err := slin.Check(ctx, f, rinit, *m, *n, t,
				append(opts, check.WithTemporalAbortOrder(*temporal))...)
			if err != nil {
				return verdict{}, fmt.Errorf("%s: %w", files[i], err)
			}
			return slinVerdict(*m, *n, res), nil
		}
	})
	if err != nil {
		fail(2, "check: %v", err)
	}

	allOK := true
	for i, v := range verdicts {
		report := v.report
		if len(files) > 1 {
			// Prefix every line (verdicts, witnesses, failing inits) so
			// per-file grep works on multi-line reports.
			lines := strings.Split(strings.TrimRight(report, "\n"), "\n")
			report = files[i] + ": " + strings.Join(lines, "\n"+files[i]+": ") + "\n"
		}
		fmt.Print(report)
		allOK = allOK && v.ok
	}
	if !allOK {
		os.Exit(1)
	}
}

func linVerdict(t trace.Trace, res lin.Result) verdict {
	var b strings.Builder
	if res.OK {
		b.WriteString("linearizable\n")
		if len(res.Witness) > 0 {
			b.WriteString("witness (commit histories by response index):\n")
			for i := 0; i < len(t); i++ {
				if h, ok := res.Witness[i]; ok {
					fmt.Fprintf(&b, "  %3d: %v\n", i, h)
				}
			}
		}
		return verdict{ok: true, report: b.String()}
	}
	fmt.Fprintf(&b, "NOT linearizable: %s\n", res.Reason)
	return verdict{ok: false, report: b.String()}
}

func slinVerdict(m, n int, res slin.Result) verdict {
	var b strings.Builder
	if res.OK {
		fmt.Fprintf(&b, "speculatively linearizable: SLin(%d,%d)\n", m, n)
		return verdict{ok: true, report: b.String()}
	}
	fmt.Fprintf(&b, "NOT SLin(%d,%d): %s\n", m, n, res.Reason)
	if res.FailedInit != nil {
		b.WriteString("failing init interpretation:\n")
		for i, h := range res.FailedInit {
			fmt.Fprintf(&b, "  action %d ↦ %v\n", i, h)
		}
	}
	return verdict{ok: false, report: b.String()}
}
