package main

import (
	"os"
	"strings"
	"testing"
)

var opts = guardOpts{tolerance: 0.25, timeTolerance: 0.60, countTolerance: 0.02, minMs: 1.0, minRatio: 1.5,
	rssTolerance: 4.0, minRSSBytes: 10 << 20}

const baseArtifact = `{
  "description": "fixture",
  "gomaxprocs": 1,
  "rows": [
    {"name": "alpha", "nodes": 1000, "optimized_nodes_per_sec": 4000000, "wall_ms": 120.0, "node_count_reduction": 2.8, "fast_path_rate": 0.95, "peak_rss_bytes": 73000},
    {"name": "beta", "ops": 128, "nodes": 50, "optimized_nodes_per_sec": 1000000, "wall_ms": 0.4}
  ],
  "parallel": {"batch_speedup": 3.0}
}`

func run(t *testing.T, fresh string) ([]string, int) {
	t.Helper()
	regs, checked, err := guard("FIXTURE.json", []byte(baseArtifact), []byte(fresh), opts)
	if err != nil {
		t.Fatal(err)
	}
	return regs, checked
}

// TestGuardPassesWithinTolerance: drift inside each class's tolerance
// passes — absolute per_sec may sag well past the ratio tolerance (it is
// load-dependent), ratios under the 1.5x noise floor (fast_path_rate)
// are exempt however far they move, and unguarded leaves (gomaxprocs,
// description) may change freely.
func TestGuardPassesWithinTolerance(t *testing.T) {
	fresh := `{
  "description": "fixture",
  "gomaxprocs": 8,
  "rows": [
    {"name": "beta", "ops": 128, "nodes": 50, "optimized_nodes_per_sec": 700000, "wall_ms": 9.9},
    {"name": "alpha", "nodes": 1010, "optimized_nodes_per_sec": 2600000, "wall_ms": 180.0, "node_count_reduction": 2.2, "fast_path_rate": 0.5, "peak_rss_bytes": 160000}
  ],
  "parallel": {"batch_speedup": 2.4}
}`
	regs, checked := run(t, fresh)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// alpha: nodes + per_sec + wall_ms + reduction + peak_rss (a 2.2×
	// heap growth passes because the fresh value is under the MiB floor;
	// rate is under the ratio floor); beta: nodes + per_sec (its wall_ms
	// baseline 0.4 is under the noise floor); parallel: speedup.
	if checked != 8 {
		t.Fatalf("checked %d metrics, want 8", checked)
	}
}

// TestGuardCatchesCountDrift: node counts are deterministic seeded
// measurements, so drift in either direction beyond the near-exact
// tolerance fires (the engines changed without recommitted artifacts).
func TestGuardCatchesCountDrift(t *testing.T) {
	fresh := strings.Replace(baseArtifact, `"nodes": 1000`, `"nodes": 1100`, 1)
	regs, _ := run(t, fresh)
	if len(regs) != 1 || !strings.Contains(regs[0], "rows[alpha].nodes") {
		t.Fatalf("want one alpha count regression, got %v", regs)
	}
}

// TestGuardCatchesRatioRegression: a >25% drop of an interleaved ratio
// fires, matched by row name even after reordering.
func TestGuardCatchesRatioRegression(t *testing.T) {
	fresh := strings.Replace(baseArtifact, `"batch_speedup": 3.0`, `"batch_speedup": 2.0`, 1)
	regs, _ := run(t, fresh)
	if len(regs) != 1 || !strings.Contains(regs[0], "parallel.batch_speedup") {
		t.Fatalf("want one speedup regression, got %v", regs)
	}
}

// TestGuardCatchesAbsoluteCollapse: absolute throughput is gated only as
// an order-of-magnitude tripwire (inverted -time-tolerance): −35% passes
// where a ratio would fire, −75% trips.
func TestGuardCatchesAbsoluteCollapse(t *testing.T) {
	fresh := strings.Replace(baseArtifact, `"optimized_nodes_per_sec": 4000000`, `"optimized_nodes_per_sec": 1000000`, 1)
	regs, _ := run(t, fresh)
	if len(regs) != 1 || !strings.Contains(regs[0], "rows[alpha].optimized_nodes_per_sec") {
		t.Fatalf("want one alpha absolute-throughput regression, got %v", regs)
	}
}

// TestGuardCatchesWallTimeRegression: a >60% wall-time growth fails; the
// sub-millisecond row stays exempt however much it grows relatively.
func TestGuardCatchesWallTimeRegression(t *testing.T) {
	fresh := strings.Replace(baseArtifact, `"wall_ms": 120.0`, `"wall_ms": 200.0`, 1)
	fresh = strings.Replace(fresh, `"wall_ms": 0.4`, `"wall_ms": 0.9`, 1)
	regs, _ := run(t, fresh)
	if len(regs) != 1 || !strings.Contains(regs[0], "rows[alpha].wall_ms") {
		t.Fatalf("want one alpha wall-time regression, got %v", regs)
	}
}

// TestGuardCatchesHeapBlowup: memory metrics are leak tripwires — a
// fresh live heap that clears both the MiB noise floor and the growth
// multiplier fires (a flat-memory streaming session starting to retain
// O(history) state looks exactly like this).
func TestGuardCatchesHeapBlowup(t *testing.T) {
	fresh := strings.Replace(baseArtifact, `"peak_rss_bytes": 73000`, `"peak_rss_bytes": 120000000`, 1)
	regs, _ := run(t, fresh)
	if len(regs) != 1 || !strings.Contains(regs[0], "rows[alpha].peak_rss_bytes") {
		t.Fatalf("want one alpha heap-blowup regression, got %v", regs)
	}
}

// TestGuardReportsMissingRows: dropping a baselined row is reported once
// per guarded metric (the baseline needs a refresh; silently ignoring it
// would hide removals).
func TestGuardReportsMissingRows(t *testing.T) {
	fresh := `{"rows": [{"name": "alpha", "nodes": 1000, "optimized_nodes_per_sec": 4000000, "wall_ms": 120.0, "node_count_reduction": 2.8, "fast_path_rate": 0.95, "peak_rss_bytes": 73000}], "parallel": {"batch_speedup": 3.0}}`
	regs, _ := run(t, fresh)
	if len(regs) != 2 {
		t.Fatalf("want two missing-row reports (beta nodes + per_sec; its wall_ms is under the noise floor), got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "rows[beta/ops=128].") {
			t.Fatalf("missing-row report names the wrong path: %v", regs)
		}
	}
}

// TestGuardRealArtifacts: identical fresh and baseline artifacts (the
// exact files this repo commits) always pass — the guard must hold on
// current baselines.
func TestGuardRealArtifacts(t *testing.T) {
	for _, f := range []string{"../../BENCH_1.json", "../../BENCH_2.json", "../../BENCH_3.json", "../../BENCH_4.json", "../../BENCH_5.json", "../../BENCH_6.json", "../../BENCH_7.json", "../../BENCH_8.json", "../../BENCH_9.json"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with go test -run TestWriteBench .)", f, err)
		}
		regs, checked, err := guard(f, data, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("%s: self-comparison regressed: %v", f, regs)
		}
		if checked == 0 {
			t.Fatalf("%s: no guarded metrics found — classifier out of sync with the artifact schema", f)
		}
	}
}

// TestGuardPairsUnnamedRowsByFields: BENCH_2-style rows carry no "name",
// so identity comes from shards/commands/distribution — inserting a new
// shard count mid-sweep must not shift the pairing of later rows.
func TestGuardPairsUnnamedRowsByFields(t *testing.T) {
	base := `{"shard_sweep": [
	  {"shards": 1, "commands": 62500, "distribution": "uniform", "check_nodes": 188476, "wall_ms": 1655.0},
	  {"shards": 16, "commands": 1000000, "distribution": "uniform", "check_nodes": 3015616, "wall_ms": 26000.0}
	]}`
	fresh := `{"shard_sweep": [
	  {"shards": 1, "commands": 62500, "distribution": "uniform", "check_nodes": 188476, "wall_ms": 1700.0},
	  {"shards": 8, "commands": 500000, "distribution": "uniform", "check_nodes": 1507808, "wall_ms": 13000.0},
	  {"shards": 16, "commands": 1000000, "distribution": "uniform", "check_nodes": 3015616, "wall_ms": 25000.0}
	]}`
	regs, checked, err := guard("FIXTURE2.json", []byte(base), []byte(fresh), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("inserted row mispaired the sweep: %v", regs)
	}
	if checked != 4 {
		t.Fatalf("checked %d metrics, want 4 (check_nodes + wall_ms per baselined row)", checked)
	}
}

// TestUpdateBaselines: -update-baselines copies fresh artifacts over the
// baselines (creating the directory on first use), refuses to proceed
// past a missing fresh artifact, and leaves already-copied files in
// place when it fails partway.
func TestUpdateBaselines(t *testing.T) {
	freshDir := t.TempDir()
	baseDir := freshDir + "/baselines/nested" // must be created
	if err := os.WriteFile(freshDir+"/BENCH_1.json", []byte(`{"a": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(freshDir+"/BENCH_2.json", []byte(`{"b": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}

	updated, err := updateBaselines(baseDir, freshDir, []string{"BENCH_1.json", "BENCH_2.json"})
	if err != nil {
		t.Fatal(err)
	}
	if len(updated) != 2 {
		t.Fatalf("updated %v, want both artifacts", updated)
	}
	for f, want := range map[string]string{"BENCH_1.json": `{"a": 1}`, "BENCH_2.json": `{"b": 2}`} {
		got, err := os.ReadFile(baseDir + "/" + f)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("%s: baselined %q, want %q", f, got, want)
		}
	}

	// Overwrites on a second run with changed fresh data.
	if err := os.WriteFile(freshDir+"/BENCH_1.json", []byte(`{"a": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := updateBaselines(baseDir, freshDir, []string{"BENCH_1.json"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(baseDir + "/BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a": 9}` {
		t.Fatalf("baseline not overwritten: %q", got)
	}

	// A missing fresh artifact is an error; the files before it were
	// still copied so the caller can see how far it got.
	updated, err = updateBaselines(baseDir, freshDir, []string{"BENCH_2.json", "BENCH_9.json"})
	if err == nil {
		t.Fatal("missing fresh artifact did not error")
	}
	if len(updated) != 1 || updated[0] != "BENCH_2.json" {
		t.Fatalf("partial update reported %v, want [BENCH_2.json]", updated)
	}
}
