// Command benchguard is the bench-regression gate of the nightly CI job
// (ISSUE 5): it parses freshly regenerated BENCH_*.json artifacts
// against the committed baselines and exits non-zero when a performance
// metric regresses beyond tolerance.
//
// Metrics are discovered structurally, so the guard needs no schema per
// artifact; each numeric leaf's key sorts it into one of five classes,
// compared at the same JSON path (array elements carrying a "name" field
// are matched by name, not index, so reordering or appending rows never
// mispairs baselines):
//
//   - counts — keys containing "nodes" or "pruned" (but not "per_sec"):
//     exact search-tree sizes of deterministic seeded measurements, the
//     repo's primary perf metric (EXPERIMENTS.md). Guarded near-exactly
//     (-count-tolerance 0.02): they only move when engine behaviour
//     changes, in which case the regenerated artifacts belong in the
//     same commit.
//   - ratios — "speedup", "reduction", "rate", "ratio": engine-vs-engine
//     comparisons measured interleaved in one process, so machine noise
//     largely cancels. Guarded at -tolerance 0.25, skipped below the
//     -min-ratio 1.5 floor (a 1.1x speedup regressing to 0.9x is noise;
//     a 2.8x reduction collapsing is a signal).
//   - absolute throughput — "per_sec": machine- and load-dependent
//     (sustained-load runs swing severalfold on shared runners), so
//     gated only as an order-of-magnitude tripwire via -time-tolerance.
//   - times — "_ms", "ns_per_op", "latency": like absolutes, gated via
//     -time-tolerance; baselines under -min-ms 50 are skipped entirely
//     (sub-50ms timings swing severalfold between identical runs).
//   - memory — "rss", "heap": post-GC live-heap bytes (BENCH_8's
//     streaming checkpoints), a leak tripwire rather than a perf gate.
//     Fires only when the fresh value clears both the -min-rss-mb 10
//     noise floor and -rss-tolerance (fractional growth over baseline):
//     a flat-memory streaming run that starts retaining O(history) state
//     blows past both, while allocator jitter on tiny heaps never
//     reaches the floor.
//
// When the guard fires after an intentional engine or perf change — or
// on a fresh runner class whose absolute numbers genuinely differ —
// refresh the baselines by committing the regenerated BENCH_*.json (the
// nightly job uploads them as artifacts).
//
// Usage:
//
//	benchguard -baseline .bench-baseline -fresh . BENCH_1.json BENCH_3.json BENCH_4.json
//	benchguard -baseline .bench-baseline -fresh . -update-baselines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// metricClass sorts guarded leaves by how they may be compared (see the
// package comment).
type metricClass int

const (
	classCount metricClass = iota
	classRatio
	classAbsolute
	classTime
	classRSS
)

type metric struct {
	val   float64
	class metricClass
}

// classify reports whether key names a guarded perf metric and its
// class.
func classify(key string) (metricClass, bool) {
	k := strings.ToLower(key)
	switch {
	// Memory first: "peak_rss"/"live_heap" keys must not fall through to
	// a substring class a future key might also contain.
	case strings.Contains(k, "rss"), strings.Contains(k, "heap"):
		return classRSS, true
	case strings.Contains(k, "per_sec"):
		return classAbsolute, true
	case strings.Contains(k, "nodes"), strings.Contains(k, "pruned"):
		return classCount, true
	case strings.Contains(k, "speedup"), strings.Contains(k, "reduction"),
		strings.Contains(k, "rate"), strings.Contains(k, "ratio"):
		return classRatio, true
	case strings.HasSuffix(k, "_ms"), strings.Contains(k, "ns_per_op"),
		strings.Contains(k, "latency"):
		return classTime, true
	}
	return 0, false
}

// collect walks a decoded JSON value, recording guarded metrics by path.
func collect(v any, path string, out map[string]metric) {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, isNum := e.(float64); isNum {
				if class, ok := classify(k); ok {
					out[p] = metric{val: f, class: class}
				}
				continue
			}
			collect(e, p, out)
		}
	case []any:
		for i, e := range x {
			seg := fmt.Sprintf("[%d]", i)
			if m, isObj := e.(map[string]any); isObj {
				if id := rowID(m); id != "" {
					seg = "[" + id + "]"
				}
			}
			collect(e, path+seg, out)
		}
	}
}

// rowID derives a stable identity for an array row from its identifying
// fields, so reordering or inserting rows never mispairs baselines:
// "name" (+"ops") covers the BENCH_1/3/4 schemas, "shards" (+
// "distribution", "commands") the BENCH_2 shard sweep, "faults_injected"
// splits the BENCH_5 baseline/chaos pair (same shard and command counts,
// different fault plans), and "txn_frac" + "coordinator_crashes" split
// the BENCH_9 transaction sweep (same shard count and distribution,
// different transaction mix). Rows with none of these fall back to
// positional pairing.
func rowID(m map[string]any) string {
	var parts []string
	if name, ok := m["name"].(string); ok {
		parts = append(parts, name)
	}
	for _, k := range []string{"ops", "shards", "commands", "txn_frac"} {
		if v, ok := m[k].(float64); ok {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if dist, ok := m["distribution"].(string); ok {
		parts = append(parts, dist)
	}
	if fi, ok := m["faults_injected"].(bool); ok {
		parts = append(parts, fmt.Sprintf("faults=%t", fi))
	}
	if cc, ok := m["coordinator_crashes"].(bool); ok {
		parts = append(parts, fmt.Sprintf("txn_faults=%t", cc))
	}
	return strings.Join(parts, "/")
}

type guardOpts struct {
	tolerance      float64
	timeTolerance  float64
	countTolerance float64
	minMs          float64
	minRatio       float64
	rssTolerance   float64
	minRSSBytes    float64
}

// guard compares one artifact's fresh metrics against its baseline and
// returns regression messages plus the number of metrics checked.
func guard(name string, baseData, freshData []byte, opts guardOpts) (regressions []string, checked int, err error) {
	var base, fresh any
	if err := json.Unmarshal(baseData, &base); err != nil {
		return nil, 0, fmt.Errorf("%s baseline: %w", name, err)
	}
	if err := json.Unmarshal(freshData, &fresh); err != nil {
		return nil, 0, fmt.Errorf("%s fresh: %w", name, err)
	}
	bm, fm := map[string]metric{}, map[string]metric{}
	collect(base, "", bm)
	collect(fresh, "", fm)
	for path, b := range bm {
		if b.class == classTime && b.val < opts.minMs {
			continue
		}
		if b.class == classRatio && b.val < opts.minRatio {
			continue
		}
		f, present := fm[path]
		if !present {
			// A renamed or dropped row is a baseline-refresh situation,
			// not a regression; report it so the log explains itself.
			regressions = append(regressions,
				fmt.Sprintf("%s: %s present in baseline but missing from fresh artifact (refresh the baseline?)", name, path))
			continue
		}
		checked++
		report := func(sign string, delta, tol float64) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s regressed %.4g → %.4g (%s%.0f%%, tolerance %.0f%%)",
					name, path, b.val, f.val, sign, 100*delta, 100*tol))
		}
		switch b.class {
		case classCount:
			// Deterministic measurements: drift in either direction means
			// the engines changed without the artifacts being recommitted.
			if b.val == 0 && f.val == 0 {
				continue
			}
			if f.val < b.val*(1-opts.countTolerance) || f.val > b.val*(1+opts.countTolerance) {
				report("±", f.val/b.val-1, opts.countTolerance)
			}
		case classRatio:
			if f.val < b.val*(1-opts.tolerance) {
				report("−", 1-f.val/b.val, opts.tolerance)
			}
		case classAbsolute:
			// Machine/load-dependent: only an order-of-magnitude drop
			// (the -time-tolerance knob, inverted) fires.
			if f.val < b.val/(1+opts.timeTolerance) {
				report("−", 1-f.val/b.val, opts.timeTolerance)
			}
		case classTime:
			if f.val > b.val*(1+opts.timeTolerance) {
				report("+", f.val/b.val-1, opts.timeTolerance)
			}
		case classRSS:
			// Leak tripwire: both conditions must hold, so allocator
			// jitter on heaps under the noise floor never fires however
			// large it is relatively.
			if f.val > opts.minRSSBytes && f.val > b.val*(1+opts.rssTolerance) {
				report("+", f.val/b.val-1, opts.rssTolerance)
			}
		}
	}
	return regressions, checked, nil
}

// updateBaselines copies the named fresh artifacts over the committed
// baselines — the blessed path after an intentional engine or perf
// change (see the package comment). It creates the baseline directory
// if needed and returns the files it wrote; a missing fresh artifact is
// an error (an update must never silently keep a stale baseline).
func updateBaselines(baselineDir, freshDir string, files []string) (updated []string, err error) {
	if err := os.MkdirAll(baselineDir, 0o755); err != nil {
		return nil, err
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(freshDir, f))
		if err != nil {
			return updated, fmt.Errorf("update-baselines: %w", err)
		}
		if err := os.WriteFile(filepath.Join(baselineDir, f), data, 0o644); err != nil {
			return updated, err
		}
		updated = append(updated, f)
	}
	return updated, nil
}

func main() {
	baseline := flag.String("baseline", ".bench-baseline", "directory holding the committed baseline artifacts")
	fresh := flag.String("fresh", ".", "directory holding the freshly regenerated artifacts")
	update := flag.Bool("update-baselines", false, "copy the fresh artifacts over the baselines instead of guarding (after an intentional perf change)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional drop for interleaved ratio metrics (speedup/reduction)")
	timeTolerance := flag.Float64("time-tolerance", 0.60, "allowed fractional growth for wall-time metrics (inverted for absolute per_sec drops)")
	countTolerance := flag.Float64("count-tolerance", 0.02, "allowed fractional drift, either direction, for deterministic node/pruned counts")
	minMs := flag.Float64("min-ms", 50, "skip time metrics whose baseline is below this (noise floor)")
	minRatio := flag.Float64("min-ratio", 1.5, "skip ratio metrics whose baseline is below this (near-1x ratios are noise)")
	rssTolerance := flag.Float64("rss-tolerance", 4.0, "allowed fractional growth for live-heap/RSS metrics (a leak tripwire, not a perf gate)")
	minRSSMB := flag.Float64("min-rss-mb", 10, "memory metrics fire only when the fresh value exceeds this many MiB (noise floor)")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		// Guarding defaults to whatever is baselined; updating defaults to
		// whatever was freshly regenerated (so new artifacts get baselined
		// on their first update).
		globDir := *baseline
		if *update {
			globDir = *fresh
		}
		matches, err := filepath.Glob(filepath.Join(globDir, "BENCH_*.json"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, m := range matches {
			files = append(files, filepath.Base(m))
		}
	}
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no BENCH_*.json artifacts to work on\n")
		os.Exit(2)
	}

	if *update {
		updated, err := updateBaselines(*baseline, *fresh, files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		for _, f := range updated {
			fmt.Printf("benchguard: baselined %s\n", f)
		}
		return
	}

	opts := guardOpts{tolerance: *tolerance, timeTolerance: *timeTolerance,
		countTolerance: *countTolerance, minMs: *minMs, minRatio: *minRatio,
		rssTolerance: *rssTolerance, minRSSBytes: *minRSSMB * (1 << 20)}
	failed := false
	for _, f := range files {
		baseData, err := os.ReadFile(filepath.Join(*baseline, f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v (no baseline — skipping new artifact)\n", err)
			continue
		}
		freshData, err := os.ReadFile(filepath.Join(*fresh, f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v (baseline exists but artifact was not regenerated)\n", err)
			failed = true
			continue
		}
		regs, checked, err := guard(f, baseData, freshData, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			failed = true
			continue
		}
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchguard: REGRESSION:", r)
		}
		if len(regs) > 0 {
			failed = true
		} else {
			fmt.Printf("benchguard: %s ok (%d metrics within tolerance)\n", f, checked)
		}
	}
	if failed {
		os.Exit(1)
	}
}
