// Command consensus-sim runs the paper's §2.1 case study — the Quorum
// fast path composed with the Paxos backup — on the deterministic network
// simulator, under configurable contention and faults, and reports
// per-operation results plus oracle verdicts.
//
// Usage examples:
//
//	consensus-sim                                 # 3 clients, 3 servers
//	consensus-sim -clients 5 -servers 7 -seed 9
//	consensus-sim -crash 2 -drop 0.1 -jitter 4
//	consensus-sim -stagger 10                     # contention-free
//	consensus-sim -trace                          # dump the JSON trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/slin"
	"repro/internal/trace"
)

func main() {
	clients := flag.Int("clients", 3, "number of clients")
	servers := flag.Int("servers", 3, "number of servers")
	seed := flag.Int64("seed", 1, "random seed (runs are replayable)")
	jitter := flag.Int64("jitter", 1, "max message delay (min is 1)")
	drop := flag.Float64("drop", 0, "message drop probability")
	crash := flag.Int("crash", 0, "servers to crash at t=0")
	stagger := flag.Int64("stagger", 0, "delay between successive proposals (0 = all concurrent)")
	timeout := flag.Int64("timeout", 10, "quorum timer")
	dumpTrace := flag.Bool("trace", false, "print the recorded trace as JSON")
	flag.Parse()

	w := msgnet.New(msgnet.Config{
		Seed:     *seed,
		MinDelay: 1,
		MaxDelay: msgnet.Time(*jitter),
		DropProb: *drop,
	})
	var cids, sids []msgnet.ProcID
	for i := 0; i < *clients; i++ {
		cids = append(cids, msgnet.ProcID(fmt.Sprintf("c%d", i+1)))
	}
	for i := 0; i < *servers; i++ {
		sids = append(sids, msgnet.ProcID(fmt.Sprintf("s%d", i+1)))
	}
	obj, err := mpcons.Build(w, cids, sids,
		quorum.Protocol{Timeout: msgnet.Time(*timeout), Retransmit: msgnet.Time(*timeout) / 2},
		paxos.Protocol{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i := 0; i < *crash && i < *servers; i++ {
		w.Crash(sids[i], 0)
	}
	for i, c := range cids {
		obj.ProposeAt(c, trace.Value(fmt.Sprintf("v%d", i+1)), msgnet.Time(int64(i)**stagger))
	}
	end := obj.Run(1_000_000)

	fmt.Printf("simulated %d clients / %d servers, seed %d, virtual end time %d\n",
		*clients, *servers, *seed, end)
	sent, delivered, dropped := w.Stats()
	fmt.Printf("messages: %d sent, %d delivered, %d dropped\n\n", sent, delivered, dropped)

	fmt.Printf("%-6s %-8s %-10s %-8s %-9s %s\n", "client", "proposed", "decided", "latency", "switches", "deciding phase")
	for _, r := range obj.Results() {
		fmt.Printf("%-6s %-8s %-10s %-8d %-9d %d\n",
			r.Client, r.Value, r.Decision, r.Latency(), r.Switches, r.Phase)
	}

	tr := obj.Trace()
	plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
	res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lin check:", err)
		os.Exit(2)
	}
	fmt.Printf("\nlinearizable: %v\n", res.OK)

	first := tr.ProjectSig(1, 2)
	sres, err := slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, first,
		check.WithTemporalAbortOrder(true))
	if err == nil {
		fmt.Printf("quorum projection SLin(1,2) [temporal]: %v\n", sres.OK)
	}
	second := tr.ProjectSig(2, 3)
	sres, err = slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 2, 3, second)
	if err == nil {
		fmt.Printf("backup projection SLin(2,3): %v\n", sres.OK)
	}

	if *dumpTrace {
		b, err := tr.EncodeJSON()
		if err == nil {
			fmt.Printf("\n%s\n", b)
		}
	}
	if !res.OK {
		os.Exit(1)
	}
}
