// Command lin-hunt stresses real concurrent Go data structures, records
// their invocation/response histories through the capture harness, and
// checks them linearizable live (ISSUE 8). Seeded-bug mutants of each
// structure are expected to come back non-linearizable.
//
// Usage:
//
//	lin-hunt -structure queue                     # stress the MS queue, check clean
//	lin-hunt -structure queue -mutant dropped-retry
//	lin-hunt -all                                 # every structure, clean + mutant
//	lin-hunt -all -assert                         # nightly mode: exit 1 unless every
//	                                              # clean run is linearizable and every
//	                                              # mutant is caught
//	lin-hunt -structure map -g 32 -ops 5000       # goroutine count and per-worker ops
//	lin-hunt -structure mutex -duration 2s        # wall-clock-bounded stress
//	lin-hunt -structure map -classical            # + uncapped ClassicalLin post-run
//	lin-hunt -structure set -rounds 8 -seed 3     # detection retry rounds for mutants
//	lin-hunt -overhead                            # capture overhead (ns/op, ratio)
//
// Mutant detection is probabilistic per run (the seeded bug must fire
// and land in the captured interleaving), so mutant hunts retry up to
// -rounds times with derived seeds and report the first catch.
//
// Exit status: 0 when every run matched its expectation (clean runs
// linearizable; with -assert, mutants caught), 1 on a violated
// expectation, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	speclin "repro"
	"repro/internal/capture"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func main() {
	var (
		structure = flag.String("structure", "", "structure to stress: map, mutex, set, queue")
		mutant    = flag.String("mutant", "", "seeded bug to enable (see -all output for names)")
		all       = flag.Bool("all", false, "hunt every structure, unmutated and mutated")
		assert    = flag.Bool("assert", false, "exit 1 unless clean runs check clean and mutants are caught")
		g         = flag.Int("g", 4*runtime.GOMAXPROCS(0), "recording goroutines")
		ops       = flag.Int("ops", 1000, "operations per goroutine")
		duration  = flag.Duration("duration", 0, "bound the stress by wall clock instead of -ops")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		keys      = flag.Int("keys", 16, "key space of the map and set workloads")
		budget    = flag.Int("budget", 5_000_000, "checker search budget per session/key")
		exact     = flag.Bool("exact", false, "force the exact engines (no ADT fast paths)")
		classical = flag.Bool("classical", false, "also run the uncapped ClassicalLin checker post-run")
		rounds    = flag.Int("rounds", 10, "detection retry rounds for mutant hunts")
		overhead  = flag.Bool("overhead", false, "measure capture overhead instead of checking")
		timeout   = flag.Duration("timeout", 0, "overall deadline (0 = none)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fail(2, "lin-hunt: unexpected arguments %v", flag.Args())
	}
	if *all == (*structure != "") {
		fail(2, "lin-hunt: exactly one of -all or -structure is required")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	base := capture.Config{
		Goroutines: *g, Ops: *ops, Duration: *duration, Seed: *seed,
		Keys: *keys, Budget: *budget, Exact: *exact, Classical: *classical,
	}

	if *overhead {
		structures := capture.Structures
		if *structure != "" {
			structures = []string{*structure}
		}
		for _, s := range structures {
			cfg := base
			cfg.Structure = s
			o, err := capture.Overhead(cfg)
			if err != nil {
				fail(2, "lin-hunt: %v", err)
			}
			fmt.Printf("%-5s g=%-3d raw %.0f ns/op, captured %.0f ns/op, throughput ratio %.3f\n",
				o.Structure, o.Goroutines, o.RawNsPerOp(), o.CapturedNsPerOp(), o.ThroughputRatio())
		}
		return
	}

	type job struct{ structure, mutant string }
	var jobs []job
	if *all {
		for _, s := range capture.Structures {
			jobs = append(jobs, job{s, ""}, job{s, capture.Mutants[s]})
		}
	} else {
		jobs = append(jobs, job{*structure, *mutant})
	}

	ok := true
	for _, j := range jobs {
		cfg := base
		cfg.Structure, cfg.Mutant = j.structure, j.mutant
		if j.mutant == "" {
			rep, err := capture.Run(ctx, cfg)
			if err != nil {
				fail(2, "lin-hunt: %v", err)
			}
			fmt.Println(rep.String())
			if rep.Live.Verdict != speclin.Linearizable {
				ok = false
				fmt.Printf("      FAIL: clean %s expected linearizable\n", j.structure)
			}
			if cfg.Classical && rep.Classical != nil && rep.Classical.Verdict != speclin.Linearizable {
				ok = false
				fmt.Printf("      FAIL: clean %s classical check expected linearizable\n", j.structure)
			}
			continue
		}
		caught := false
		var last capture.Report
		for r := 0; r < *rounds && !caught; r++ {
			cfg.Seed = *seed + int64(r)
			rep, err := capture.Run(ctx, cfg)
			if err != nil {
				fail(2, "lin-hunt: %v", err)
			}
			last = rep
			caught = rep.Live.Verdict == speclin.NotLinearizable
			if caught && r > 0 {
				fmt.Printf("      (caught in round %d)\n", r+1)
			}
		}
		fmt.Println(last.String())
		if !caught {
			fmt.Printf("      mutant %s/%s NOT caught in %d rounds\n", j.structure, j.mutant, *rounds)
			if *assert {
				ok = false
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}
