// Command experiments regenerates the experiment tables of
// EXPERIMENTS.md (the E1–E19 index of DESIGN.md).
//
// Usage:
//
//	experiments                # run everything
//	experiments -e E1,E9       # run a subset
//	experiments -timeout 5m    # bound the whole run (checker API v2:
//	                           # cancellation aborts in-flight searches)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("e", "", "comma-separated experiment IDs to run (default: all)")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	failed := false
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		tab, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		experiments.Render(os.Stdout, tab)
	}
	if failed {
		os.Exit(1)
	}
}
