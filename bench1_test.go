// Benchmarks and the machine-readable perf summary for the hashed
// memoization + parallel batch checking optimization (ISSUE 1): the
// lin/slin search engines memoize on incrementally-maintained 128-bit
// digests of interned symbols instead of rebuilding string keys per node,
// and batches of independent traces shard across GOMAXPROCS cores.
//
// TestWriteBench1JSON regenerates BENCH_1.json on every `go test .` run,
// comparing the optimized checkers against the retained string-key
// reference implementations (lin.CheckReference, slin.CheckReference) on
// identical search trees: failed exhaustive searches spend the same node
// count in both, so nodes/second is an apples-to-apples throughput metric.
package speclin_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hardLinTrace is the wide concurrent split-decision workload: never
// linearizable, so both checkers exhaust the identical memoized search
// DAG (node counts match exactly).
func hardLinTrace(n int) trace.Trace { return workload.SplitDecision(n, "h") }

func slinBenchTraces(n int) []trace.Trace {
	r := rand.New(rand.NewSource(7))
	out := make([]trace.Trace, n)
	for i := range out {
		out[i] = workload.FirstPhase(r, workload.PhaseOpts{Clients: 3, NoLateOps: true})
	}
	return out
}

// ---- Memoization: hashed digests vs string keys (ISSUE 1 tentpole) ----

func BenchmarkMemoLinCheckers(b *testing.B) {
	traces := e8Traces(256)
	hard := hardLinTrace(6)
	// POR off throughout: this benchmark isolates memoization cost on
	// identical search trees (the reference has no reducer); the
	// reduction itself is measured by E13 / BENCH_3.json.
	opts := check.WithBudget(50_000_000)
	noPOR := check.WithPOR(false)
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lin.Check(context.Background(), adt.Consensus{}, traces[i%len(traces)], opts, noPOR); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("string-key-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lin.CheckReference(adt.Consensus{}, traces[i%len(traces)], opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashed-hard", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			res, err := lin.Check(context.Background(), adt.Consensus{}, hard, opts, noPOR)
			if err != nil {
				b.Fatal(err)
			}
			nodes += int64(res.Nodes)
		}
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
	})
	b.Run("string-key-reference-hard", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		for i := 0; i < b.N; i++ {
			res, err := lin.CheckReference(adt.Consensus{}, hard, opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes += int64(res.Nodes)
		}
		b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
	})
}

func BenchmarkMemoSLinCheckers(b *testing.B) {
	traces := slinBenchTraces(256)
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, traces[i%len(traces)], check.WithPOR(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("string-key-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := slin.CheckReference(adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, traces[i%len(traces)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Parallel batch checking across GOMAXPROCS cores ----

func BenchmarkBatchCheckAll(b *testing.B) {
	traces := e8Traces(256)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.CheckAll(context.Background(), adt.Consensus{}, traces, check.WithWorkers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gomaxprocs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lin.CheckAll(context.Background(), adt.Consensus{}, traces); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- BENCH_1.json ----

type bench1Row struct {
	Name              string  `json:"name"`
	Verdict           string  `json:"verdict"`
	Nodes             int     `json:"nodes_per_check"`
	BaselineNsPerOp   float64 `json:"baseline_ns_per_op"`
	OptimizedNsPerOp  float64 `json:"optimized_ns_per_op"`
	BaselineNodesPerS float64 `json:"baseline_nodes_per_sec"`
	OptimizedNodesPS  float64 `json:"optimized_nodes_per_sec"`
	Speedup           float64 `json:"node_throughput_speedup"`
	BaselineAllocs    float64 `json:"baseline_allocs_per_op"`
	OptimizedAllocs   float64 `json:"optimized_allocs_per_op"`
}

type bench1Summary struct {
	Issue       int         `json:"issue"`
	Description string      `json:"description"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rows        []bench1Row `json:"checker_benchmarks"`
	// ClassicalFastPath records the decision-13 parity claim: classical
	// checks of ≤63 operations stay on the single-word placed-bitmask
	// fast path, so their throughput must match the retained bitmask
	// reference within noise (identical search trees; the sparse engine
	// additionally precomputes real-time precedence, so it is usually
	// slightly faster).
	ClassicalFastPath struct {
		Nodes            int     `json:"nodes_per_check"`
		ReferenceNodesPS float64 `json:"reference_nodes_per_sec"`
		SparseNodesPS    float64 `json:"fast_path_nodes_per_sec"`
		Ratio            float64 `json:"fast_path_throughput_ratio"`
	} `json:"classical_fast_path"`
	Batch struct {
		Traces       int     `json:"traces"`
		Workers      int     `json:"workers"`
		SequentialMs float64 `json:"sequential_ms"`
		ParallelMs   float64 `json:"parallel_ms"`
		Speedup      float64 `json:"batch_speedup"`
	} `json:"parallel_batch"`
}

// timeChecks measures wall-clock per call and total nodes for reps calls.
func timeChecks(reps int, fn func() (nodes int, err error)) (nsPerOp, nodesPerSec float64, nodes int, err error) {
	var total int
	start := time.Now()
	for i := 0; i < reps; i++ {
		n, e := fn()
		if e != nil {
			return 0, 0, 0, e
		}
		total = n // per-call nodes (identical every rep: searches are deterministic)
	}
	el := time.Since(start)
	nsPerOp = float64(el.Nanoseconds()) / float64(reps)
	nodesPerSec = float64(total) * float64(reps) / el.Seconds()
	return nsPerOp, nodesPerSec, total, nil
}

// TestWriteBench1JSON records the optimization's perf summary. It runs as
// a regular test so the artifact regenerates under the tier-1 gate; the
// workloads are sized to finish in well under a second per row.
func TestWriteBench1JSON(t *testing.T) {
	sum := bench1Summary{
		Issue: 1,
		Description: "hashed memoization (interned symbols + incremental 128-bit digests, " +
			"in-place search state) vs retained string-key reference checkers; " +
			"identical search trees, so nodes/sec is directly comparable",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	// The reducer off: this artifact isolates the memoization speedup on
	// IDENTICAL search trees (the reference engines have no reducer).
	// BENCH_3.json measures the partial-order reduction separately.
	opts := check.WithBudget(50_000_000)
	noPOR := check.WithPOR(false)

	rows := []struct {
		name      string
		optimized func() (int, error)
		baseline  func() (int, error)
		reps      int
	}{
		{
			name: "lin-split-decision-6",
			optimized: func() (int, error) {
				r, err := lin.Check(context.Background(), adt.Consensus{}, hardLinTrace(6), opts, noPOR)
				return r.Nodes, err
			},
			baseline: func() (int, error) {
				r, err := lin.CheckReference(adt.Consensus{}, hardLinTrace(6), opts)
				return r.Nodes, err
			},
			reps: 30,
		},
		{
			name: "slin-contended-first-phase",
			optimized: func() (int, error) {
				r, err := slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, hardSLinTrace(), check.WithBudget(50_000_000), noPOR)
				return r.Nodes, err
			},
			baseline: func() (int, error) {
				r, err := slin.CheckReference(adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, hardSLinTrace(), check.WithBudget(50_000_000))
				return r.Nodes, err
			},
			reps: 30,
		},
	}
	for _, row := range rows {
		optNs, optNps, optNodes, err := timeChecks(row.reps, row.optimized)
		if err != nil {
			t.Fatalf("%s optimized: %v", row.name, err)
		}
		baseNs, baseNps, baseNodes, err := timeChecks(row.reps, row.baseline)
		if err != nil {
			t.Fatalf("%s baseline: %v", row.name, err)
		}
		if optNodes != baseNodes {
			t.Fatalf("%s: node counts diverge (optimized %d, baseline %d); throughput not comparable",
				row.name, optNodes, baseNodes)
		}
		r := bench1Row{
			Name:              row.name,
			Verdict:           "not linearizable (exhaustive search)",
			Nodes:             optNodes,
			BaselineNsPerOp:   baseNs,
			OptimizedNsPerOp:  optNs,
			BaselineNodesPerS: baseNps,
			OptimizedNodesPS:  optNps,
			Speedup:           optNps / baseNps,
			BaselineAllocs: testing.AllocsPerRun(5, func() {
				if _, err := row.baseline(); err != nil {
					t.Fatal(err)
				}
			}),
			OptimizedAllocs: testing.AllocsPerRun(5, func() {
				if _, err := row.optimized(); err != nil {
					t.Fatal(err)
				}
			}),
		}
		sum.Rows = append(sum.Rows, r)
		t.Logf("%s: %.0f -> %.0f nodes/s (%.2fx), %.0f -> %.0f allocs/op",
			r.Name, r.BaselineNodesPerS, r.OptimizedNodesPS, r.Speedup, r.BaselineAllocs, r.OptimizedAllocs)
		if r.Speedup < 2 {
			t.Errorf("%s: node-throughput speedup %.2fx below the 2x acceptance bar", r.Name, r.Speedup)
		}
	}

	// Classical fast-path parity (DESIGN.md, decision 13): ≤63-op
	// classical checks stay on the single-word placed bitmask, so the
	// uncapped engine must hold the reference's throughput. Node counts
	// must match exactly (same candidate order ⇒ identical trees); the
	// throughput bar is a generous noise band, and the nightly
	// bench-regression guard tracks the recorded per-sec numbers.
	refNs, refNps, refNodes, err := timeChecks(60, func() (int, error) {
		r, err := lin.CheckClassicalReference(context.Background(), adt.Consensus{}, hardLinTrace(6), opts)
		return r.Nodes, err
	})
	if err != nil {
		t.Fatal(err)
	}
	sparseNs, sparseNps, sparseNodes, err := timeChecks(60, func() (int, error) {
		r, err := lin.CheckClassical(context.Background(), adt.Consensus{}, hardLinTrace(6), opts)
		return r.Nodes, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if refNodes != sparseNodes {
		t.Fatalf("classical fast path diverged from the bitmask reference: %d vs %d nodes", sparseNodes, refNodes)
	}
	sum.ClassicalFastPath.Nodes = sparseNodes
	sum.ClassicalFastPath.ReferenceNodesPS = refNps
	sum.ClassicalFastPath.SparseNodesPS = sparseNps
	sum.ClassicalFastPath.Ratio = sparseNps / refNps
	t.Logf("classical fast path: %.0f nodes/s vs reference %.0f (%.2fx, %.0f vs %.0f ns/op)",
		sparseNps, refNps, sum.ClassicalFastPath.Ratio, sparseNs, refNs)
	if sum.ClassicalFastPath.Ratio < 0.7 {
		t.Errorf("classical fast path fell to %.2fx of the bitmask reference throughput — the ≤63-op path regressed",
			sum.ClassicalFastPath.Ratio)
	}

	// Parallel batch: shard independent traces across GOMAXPROCS cores.
	traces := make([]trace.Trace, 64)
	for i := range traces {
		traces[i] = hardLinTrace(5)
	}
	start := time.Now()
	if _, err := lin.CheckAll(context.Background(), adt.Consensus{}, traces, check.WithWorkers(1), check.WithBudget(50_000_000), noPOR); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(start)
	start = time.Now()
	if _, err := lin.CheckAll(context.Background(), adt.Consensus{}, traces, check.WithBudget(50_000_000), noPOR); err != nil {
		t.Fatal(err)
	}
	par := time.Since(start)
	sum.Batch.Traces = len(traces)
	sum.Batch.Workers = runtime.GOMAXPROCS(0)
	sum.Batch.SequentialMs = float64(seq.Microseconds()) / 1000
	sum.Batch.ParallelMs = float64(par.Microseconds()) / 1000
	sum.Batch.Speedup = seq.Seconds() / par.Seconds()
	t.Logf("batch of %d: sequential %v, %d-way parallel %v (%.2fx)",
		len(traces), seq, sum.Batch.Workers, par, sum.Batch.Speedup)

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_1.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// hardSLinTrace is a contended first-phase trace with conflicting
// proposals and a poisoned switch: the slin search must exhaust its
// extension space, exercising the chain, multiset and abort machinery.
func hardSLinTrace() trace.Trace {
	var tr trace.Trace
	n := 5
	for i := 0; i < n; i++ {
		c := trace.ClientID(fmt.Sprintf("q%d", i))
		tr = append(tr, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))))
	}
	// Two clients decide different values (never SLin), the rest switch.
	for i := 0; i < n; i++ {
		c := trace.ClientID(fmt.Sprintf("q%d", i))
		in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))
		if i < 2 {
			tr = append(tr, trace.Response(c, 1, in, adt.DecideOutput(fmt.Sprintf("v%d", i))))
		} else {
			tr = append(tr, trace.Switch(c, 2, in, fmt.Sprintf("v%d", i)))
		}
	}
	return tr
}
