//go:build race

package speclin_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
