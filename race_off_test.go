//go:build !race

package speclin_test

// raceEnabled reports whether the race detector is compiled in; the
// heavyweight sweep tests scale down under it (CI runs them at full
// scale in the plain test pass).
const raceEnabled = false
