// The machine-readable summary for the cross-shard transaction layer
// (ISSUE 10): TestWriteBench9JSON runs the E19 transaction sweep — a
// zipf-contended mixed workload of single-key operations and multi-key
// MultiPut/MultiGet/CAS transactions over a TxnCluster (2PC layered on
// the per-shard speculative logs), its full-scale row 100,000 items at
// 20% transactions across 8 shards under rolling coordinator
// crash–restarts — and records BENCH_9.json. Every submission lands,
// every transaction resolves, aborted transactions leave no per-key
// effect (the adt.TxnKV no-op semantics verify this inside the check),
// and every txn-connected component's merged history is linearizable,
// streamed online through incremental checker sessions.
package speclin_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

type bench9Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		Shards          int     `json:"shards"`
		Clients         int     `json:"clients"`
		Servers         int     `json:"servers"`
		Keys            int     `json:"keys"`
		TxnKeys         int     `json:"txn_keys"`
		Groups          int     `json:"groups"`
		PaceDelays      int64   `json:"pace_delays"`
		ZipfS           float64 `json:"zipf_s"`
		CompactEvery    int     `json:"compact_every"`
		RecoveryTimeout int64   `json:"recovery_timeout_delays"`
		Seed            int64   `json:"seed"`
	} `json:"config"`
	Rows []experiments.TxnRunResult `json:"txn_sweep"`
}

// TestWriteBench9JSON regenerates BENCH_9.json on every plain `go test .`
// run. Under -short or the race detector it runs a scaled-down smoke
// sweep with the same safety assertions and leaves the recorded artifact
// untouched.
func TestWriteBench9JSON(t *testing.T) {
	sweep, full := experiments.E19SweepCommands, experiments.E19FullCommands
	isFull := !raceEnabled && !testing.Short()
	if !isFull {
		sweep, full = experiments.E19SmokeCommands, 2*experiments.E19SmokeCommands
	}
	rows, err := experiments.E19Rows(context.Background(), sweep, full)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range rows {
		if !r.Linearizable {
			t.Errorf("frac=%.2f %s faults=%v: histories not all linearizable",
				r.TxnFrac, r.Distribution, r.CoordinatorCrashes)
		}
		if !r.Consistent {
			t.Errorf("frac=%.2f %s faults=%v: per-shard log agreement failed",
				r.TxnFrac, r.Distribution, r.CoordinatorCrashes)
		}
		if int64(r.Commands) != r.CheckedOps {
			t.Errorf("frac=%.2f %s: checked %d ops of %d workload items",
				r.TxnFrac, r.Distribution, r.CheckedOps, r.Commands)
		}
		if r.TxnsStarted == 0 || r.TxnsCommitted == 0 {
			t.Errorf("frac=%.2f %s: %d transactions started, %d committed — sweep row exercises nothing",
				r.TxnFrac, r.Distribution, r.TxnsStarted, r.TxnsCommitted)
		}
		if r.Components == 0 || r.FastPathKeys == 0 {
			t.Errorf("frac=%.2f %s: components=%d fast-path keys=%d — want both merged components and fast-path keys",
				r.TxnFrac, r.Distribution, r.Components, r.FastPathKeys)
		}
		t.Logf("cmds=%6d %-10s frac=%.2f faults=%-5v commit=%.2f aborts=%d/%d/%d components=%3d largest=%4d fast-path=%3d (%.0fms)",
			r.Commands, r.Distribution, r.TxnFrac, r.CoordinatorCrashes, r.CommitRate,
			r.AbortedConflict, r.AbortedCondition, r.AbortedRecovery,
			r.Components, r.LargestComponent, r.FastPathKeys, r.WallMs)
	}

	// The faulted row must actually have exercised the recovery path.
	faulted := rows[len(rows)-1]
	if !faulted.CoordinatorCrashes {
		t.Fatal("last row is not the faulted row")
	}
	if faulted.AbortedRecovery == 0 {
		t.Errorf("faulted row: no recovery aborts — coordinator crashes never orphaned a transaction")
	}

	if !isFull {
		t.Log("short/race mode: BENCH_9.json left untouched")
		return
	}
	if faulted.Commands < 100_000 {
		t.Errorf("full-scale row landed %d workload items (want ≥ 100,000)", faulted.Commands)
	}
	sum := bench9Summary{
		Issue: 10,
		Description: "cross-shard atomic transactions: MultiPut/MultiGet/CAS over 2–4 keys via 2PC " +
			"layered on per-shard speculative logs (prepare reserves a slot and votes at replay, " +
			"a single deterministic decision event commits or aborts, outcome markers unblock " +
			"each shard in its total order); zipf-contended mixed workload, full-scale row 100k " +
			"items at 20% transactions across 8 shards under rolling coordinator crash–restarts " +
			"with the recovery watchdog armed; every txn-connected component checked online as " +
			"one merged history over adt.TxnKV, untouched keys on the register fast path",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       rows,
	}
	sum.Config.Shards = experiments.E19Base.Shards
	sum.Config.Clients = experiments.E19Base.Clients
	sum.Config.Servers = experiments.E19Base.Servers
	sum.Config.Keys = experiments.E19Base.Keys
	sum.Config.TxnKeys = experiments.E19Base.TxnKeys
	sum.Config.Groups = experiments.E19Base.Groups
	sum.Config.PaceDelays = int64(experiments.E19Base.Pace)
	sum.Config.ZipfS = experiments.E19Base.ZipfS
	sum.Config.CompactEvery = experiments.E19Base.CompactEvery
	sum.Config.RecoveryTimeout = int64(experiments.E19Base.RecoveryTimeout)
	sum.Config.Seed = experiments.E19Base.Seed

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_9.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_9.json")
}
