// Machine-readable perf summary for the uncapped classical checker
// (ISSUE 5): the sparse placed-set representation (single-word fast path
// ≤63 ops, word-array spill with a digest-keyed memo beyond — DESIGN.md,
// decision 13) on the E14 long-trace sweep, 128/256/512-operation traces
// the former uint64 bitmask hard-failed with ErrTooManyOps.
//
// TestWriteBench4JSON regenerates BENCH_4.json on every plain
// `go test .` run. Node counts are the primary metric as in BENCH_3
// (identical search machinery per node); wall-clock per family is
// recorded for context, and the nightly bench-regression guard
// (cmd/benchguard) compares both against the committed baseline.
package speclin_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/lin"
)

type bench4Row struct {
	Name           string  `json:"name"`
	Ops            int     `json:"ops"`
	Traces         int     `json:"traces"`
	VerdictsAgree  bool    `json:"verdicts_agree"`
	NodesClassical int     `json:"nodes_classical"`
	NodesPOR       int     `json:"nodes_new_reduced"`
	NodesFull      int     `json:"nodes_new_unreduced"`
	Pruned         int     `json:"pruned_branches"`
	ClassicalMs    float64 `json:"classical_ms"`
	PORMs          float64 `json:"new_reduced_ms"`
	FullMs         float64 `json:"new_unreduced_ms"`
}

type bench4Summary struct {
	Issue       int         `json:"issue"`
	Description string      `json:"description"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rows        []bench4Row `json:"long_trace_benchmarks"`
	// ClassicalNPS is the sweep-wide classical node throughput, timed
	// over enough repetitions of every family's classical checks to be
	// stable between quiet runs — the per-row wall times are fractions
	// of a millisecond and land under the bench-regression guard's
	// noise floor by design. Like every absolute per_sec number it is
	// machine- and load-dependent (sustained-load runs swing it
	// severalfold), so the guard gates it only as an order-of-magnitude
	// tripwire; the tightly-guarded classical perf signals are the
	// deterministic node counts here and BENCH_1's interleaved
	// fast-path parity ratio.
	ClassicalNPS float64 `json:"classical_nodes_per_sec"`
}

// TestWriteBench4JSON records the E14 long-trace measurement. It runs as
// a regular test so the artifact regenerates under the tier-1 gate; the
// families are sized to finish in well under a minute.
func TestWriteBench4JSON(t *testing.T) {
	if testing.Short() {
		t.Skip("artifact regeneration skipped under -short")
	}
	ctx := context.Background()
	sum := bench4Summary{
		Issue: 5,
		Description: "uncapped classical checking (sparse placed sets, decision 13) on " +
			"128/256/512-op traces vs the new-definition engine with the partial-order " +
			"reduction on and off; unique-input traces, so Theorem 1 equivalence is " +
			"asserted per trace — every row hard-failed the former 63-op cap before",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	saw512 := false
	for _, fam := range experiments.E14Families() {
		st, err := experiments.E14Measure(ctx, fam.F, fam.Traces)
		if err != nil {
			t.Fatalf("%s/%d: %v", fam.Name, fam.Ops, err)
		}
		row := bench4Row{
			Name:           fam.Name,
			Ops:            fam.Ops,
			Traces:         st.Traces,
			VerdictsAgree:  st.Agree == st.Traces,
			NodesClassical: st.NodesClassical,
			NodesPOR:       st.NodesPOR,
			NodesFull:      st.NodesFull,
			Pruned:         st.Pruned,
			ClassicalMs:    st.ClassicalMs,
			PORMs:          st.PORMs,
			FullMs:         st.FullMs,
		}
		sum.Rows = append(sum.Rows, row)
		t.Logf("%s/%d ops: classical %d nodes (%.2fms), new %d→%d nodes, %d pruned",
			row.Name, row.Ops, row.NodesClassical, row.ClassicalMs, row.NodesFull, row.NodesPOR, row.Pruned)
		if !row.VerdictsAgree {
			t.Errorf("%s/%d: verdict disagreement", row.Name, row.Ops)
		}
		if fam.Ops == 512 {
			saw512 = true
		}
	}
	if !saw512 {
		t.Error("the sweep never reached 512-operation traces")
	}
	sum.ClassicalNPS = classicalSweepThroughput(t, ctx)
	t.Logf("sweep-wide classical throughput: %.0f nodes/s", sum.ClassicalNPS)
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_4.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// classicalSweepThroughput times repeated passes of every E14 family's
// classical checks and returns the aggregate node throughput. One pass
// spends only ~15ms of classical search, far inside timing noise, so
// repetitions push the measured window to a few hundred milliseconds —
// stable enough for the nightly guard's 25% throughput tolerance.
func classicalSweepThroughput(t *testing.T, ctx context.Context) float64 {
	t.Helper()
	fams := experiments.E14Families()
	budget := check.WithBudget(50_000_000)
	var nodes int64
	const reps = 20
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, fam := range fams {
			for _, tr := range fam.Traces {
				res, err := lin.CheckClassical(ctx, fam.F, tr, budget)
				if err != nil {
					t.Fatalf("%s/%d: %v", fam.Name, fam.Ops, err)
				}
				nodes += int64(res.Nodes)
			}
		}
	}
	return float64(nodes) / time.Since(start).Seconds()
}
